//! Behavioral contract of the embedding store: validated admission,
//! stale-generation fallback on every reload failure mode, retry against
//! transient injected faults, deadlines, load shedding, and degradation.

use std::time::Duration;

use sarn_geo::Point;
use sarn_serve::{Deadline, EmbeddingStore, LoadFault, ServeConfig, ServeError, ServeState};
use sarn_tensor::{IoError, Tensor};

const N: usize = 30;
const D: usize = 4;

/// Midpoints on a small lattice around Chengdu, ~200 m apart.
fn midpoints() -> Vec<Point> {
    (0..N)
        .map(|i| {
            Point::new(
                30.64 + (i / 6) as f64 * 0.002,
                104.04 + (i % 6) as f64 * 0.002,
            )
        })
        .collect()
}

/// Deterministic embeddings whose rows differ: row `i`, component `j`
/// holds `scale * (i + 1) + j` — distinguishable per generation and per
/// row, finite everywhere.
fn embeddings(scale: f32) -> Tensor {
    Tensor::from_vec(
        N,
        D,
        (0..N * D)
            .map(|p| scale * ((p / D) as f32 + 1.0) + (p % D) as f32)
            .collect(),
    )
}

fn fast_cfg() -> ServeConfig {
    ServeConfig {
        reload_retries: 1,
        reload_backoff: Duration::from_millis(1),
        ..ServeConfig::default()
    }
}

fn store(cfg: ServeConfig) -> EmbeddingStore {
    EmbeddingStore::new(midpoints(), D, cfg).expect("valid store")
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sarn_serve_{name}_{}", std::process::id()))
}

#[test]
fn fresh_store_is_loading_and_not_ready() {
    let s = store(fast_cfg());
    assert_eq!(s.generation(), None);
    assert_eq!(s.health().state, ServeState::Loading);
    match s.embedding(0, Deadline::unbounded()) {
        Err(ServeError::NotReady) => {}
        other => panic!("expected NotReady, got {other:?}"),
    }
    // Bounds are checked before readiness: an unknown id is typed as such.
    match s.knn(N + 5, 3, Deadline::unbounded()) {
        Err(ServeError::UnknownSegment {
            segment,
            num_segments,
        }) => {
            assert_eq!((segment, num_segments), (N + 5, N));
        }
        other => panic!("expected UnknownSegment, got {other:?}"),
    }
}

#[test]
fn admission_rejects_bad_artifacts_and_keeps_the_current_generation() {
    let s = store(fast_cfg());
    s.admit(embeddings(1.0)).expect("first admission");
    assert_eq!(s.generation(), Some(1));
    let baseline = s
        .embedding(7, Deadline::unbounded())
        .expect("baseline lookup");

    // Wrong shape: typed at the io-validation layer.
    match s.admit(Tensor::zeros(N + 1, D)) {
        Err(ServeError::Load(IoError::ShapeMismatch { rows, .. })) => assert_eq!(rows, N + 1),
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    // Corrupt row: typed by the shared watchdog/serving screen.
    let mut sick = embeddings(2.0);
    sick.data_mut()[9 * D + 2] = f32::NAN;
    match s.admit(sick) {
        Err(ServeError::CorruptRow { row: 9, defect }) => {
            assert!(defect.to_string().contains("component 2"), "{defect}")
        }
        other => panic!("expected CorruptRow at 9, got {other:?}"),
    }
    // Both rejections left generation 1 serving identical answers.
    assert_eq!(s.generation(), Some(1));
    assert_eq!(
        s.embedding(7, Deadline::unbounded())
            .expect("still serving"),
        baseline
    );
}

#[test]
fn reload_failure_modes_all_fall_back_to_last_known_good() {
    let s = store(fast_cfg());
    let path = tmp("fallback");
    embeddings(1.0).save(&path).expect("writing gen 1");
    assert_eq!(s.reload(&path).expect("first reload"), 1);
    let baseline = s.embedding(3, Deadline::unbounded()).expect("baseline");
    let baseline_knn = s.knn(3, 5, Deadline::unbounded()).expect("baseline knn");

    // Garbage file.
    std::fs::write(&path, b"definitely not an artifact").expect("corrupting");
    match s.reload(&path) {
        Err(ServeError::Load(IoError::BadMagic { .. })) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
    // Truncated file.
    let full = {
        embeddings(1.0).save(&path).expect("rewriting gen 1");
        std::fs::read(&path).expect("reading bytes")
    };
    std::fs::write(&path, &full[..full.len() / 2]).expect("truncating");
    match s.reload(&path) {
        Err(ServeError::Load(IoError::Truncated { .. })) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    // Wrong shape on disk (artifact from another network).
    Tensor::zeros(N, D + 3).save(&path).expect("writing misfit");
    match s.reload(&path) {
        Err(ServeError::Load(IoError::ShapeMismatch { .. })) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    // Non-finite payload on disk.
    let mut sick = embeddings(3.0);
    sick.data_mut()[0] = f32::INFINITY;
    sick.save(&path).expect("writing sick artifact");
    match s.reload(&path) {
        Err(ServeError::CorruptRow { row: 0, .. }) => {}
        other => panic!("expected CorruptRow, got {other:?}"),
    }

    // Throughout: generation 1 kept answering, bit-for-bit.
    assert_eq!(s.generation(), Some(1));
    assert_eq!(
        s.embedding(3, Deadline::unbounded()).expect("stale lookup"),
        baseline
    );
    assert_eq!(
        s.knn(3, 5, Deadline::unbounded()).expect("stale knn"),
        baseline_knn
    );
    // And the health report says degraded, with the failure count and the
    // last typed error's message.
    let h = s.health();
    assert_eq!(h.consecutive_reload_failures, 4);
    assert_eq!(h.reloads_failed, 4);
    assert!(matches!(
        h.state,
        ServeState::Degraded {
            generation: 1,
            consecutive_failures: 4
        }
    ));
    assert!(h.last_reload_error.is_some());

    // A good artifact flips every reader to generation 2 and clears the
    // degradation.
    embeddings(5.0).save(&path).expect("writing gen 2");
    assert_eq!(s.reload(&path).expect("recovery reload"), 2);
    let flipped = s.embedding(3, Deadline::unbounded()).expect("new lookup");
    assert_ne!(flipped, baseline);
    assert_eq!(flipped[0], 5.0 * 4.0); // scale * (row + 1) + 0
    let h = s.health();
    assert_eq!(h.state, ServeState::Serving { generation: 2 });
    assert_eq!(h.consecutive_reload_failures, 0);
    assert!(h.last_reload_error.is_none());
    std::fs::remove_file(path).ok();
}

#[test]
fn bounded_retry_outlasts_transient_injected_faults() {
    let mut cfg = fast_cfg();
    cfg.reload_retries = 3;
    let s = store(cfg);
    let path = tmp("transient");
    embeddings(1.0).save(&path).expect("writing artifact");

    // Two injected failures, four attempts allowed: the reload succeeds.
    s.inject_fault(Some(LoadFault {
        fail_loads: 2,
        delay_ms: 0,
    }));
    assert_eq!(s.reload(&path).expect("retry outlasts fault"), 1);
    assert_eq!(s.health().reloads_ok, 1);

    // A fault outlasting the budget is a typed failure; the generation
    // stays.
    s.inject_fault(Some(LoadFault {
        fail_loads: 100,
        delay_ms: 0,
    }));
    match s.reload(&path) {
        Err(ServeError::Load(IoError::Io(e))) => {
            assert!(e.to_string().contains("injected"), "{e}")
        }
        other => panic!("expected the injected fault, got {other:?}"),
    }
    assert_eq!(s.generation(), Some(1));
    s.inject_fault(None);
    assert_eq!(s.reload(&path).expect("clean after clearing"), 2);
    std::fs::remove_file(path).ok();
}

#[test]
fn deadlines_are_typed_and_slow_io_can_be_simulated() {
    let s = store(fast_cfg());
    s.admit(embeddings(1.0)).expect("admission");
    match s.knn(0, 5, Deadline::within(Duration::ZERO)) {
        Err(ServeError::DeadlineExceeded { budget, .. }) => assert_eq!(budget, Duration::ZERO),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // A generous budget answers fine.
    s.knn(0, 5, Deadline::within(Duration::from_secs(60)))
        .expect("generous budget");
    // Injected slow IO delays a reload without failing it.
    let path = tmp("slow");
    embeddings(2.0).save(&path).expect("writing artifact");
    s.inject_fault(Some(LoadFault {
        fail_loads: 0,
        delay_ms: 30,
    }));
    let t0 = std::time::Instant::now();
    s.reload(&path).expect("slow but successful reload");
    assert!(t0.elapsed() >= Duration::from_millis(30));
    std::fs::remove_file(path).ok();
}

#[test]
fn overload_sheds_and_pressure_degrades_exact_knn() {
    let cfg = ServeConfig {
        max_inflight: 4,
        degrade_inflight: 2,
        ..fast_cfg()
    };
    let s = store(cfg);
    s.admit(embeddings(1.0)).expect("admission");

    // Saturate the admission budget: the next request is shed, typed.
    let tickets: Vec<_> = (0..4)
        .map(|i| s.try_ticket().unwrap_or_else(|e| panic!("ticket {i}: {e}")))
        .collect();
    match s.embedding(0, Deadline::unbounded()) {
        Err(ServeError::Overloaded {
            inflight: 4,
            max_inflight: 4,
        }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(matches!(
        s.health().state,
        ServeState::Shedding { generation: 1 }
    ));
    assert_eq!(s.health().shed_total, 1);
    drop(tickets);

    // Between the degrade threshold and the ceiling, exact k-NN answers
    // via the approximate path and says so.
    let pressure: Vec<_> = (0..3)
        .map(|i| {
            s.try_ticket()
                .unwrap_or_else(|e| panic!("pressure ticket {i}: {e}"))
        })
        .collect();
    let degraded = s.knn(5, 3, Deadline::unbounded()).expect("degraded knn");
    assert!(degraded.degraded);
    let reference = s
        .knn_approx(5, 3, Deadline::unbounded())
        .expect("approx reference");
    assert_eq!(degraded.neighbors, reference.neighbors);
    drop(pressure);

    // Unloaded, the same query is exact again.
    let exact = s.knn(5, 3, Deadline::unbounded()).expect("exact knn");
    assert!(!exact.degraded);
    assert_eq!(s.health().degraded_total, 1);
    assert!(s.health().inflight == 0, "tickets all released");
}

#[test]
fn approx_equals_exact_when_the_neighborhood_covers_the_network() {
    // With 10 km cells the whole lattice shares one cell, so the
    // approximate candidate set is the full network and the two paths
    // must agree exactly.
    let cfg = ServeConfig {
        grid_clen_m: 10_000.0,
        ..fast_cfg()
    };
    let s = store(cfg);
    s.admit(embeddings(1.0)).expect("admission");
    for seg in [0, 7, N - 1] {
        let exact = s.knn(seg, 6, Deadline::unbounded()).expect("exact");
        let approx = s.knn_approx(seg, 6, Deadline::unbounded()).expect("approx");
        assert_eq!(exact.neighbors, approx.neighbors, "segment {seg}");
        assert_eq!(exact.generation, approx.generation);
    }
}

#[test]
fn approx_radius_expands_until_enough_candidates_exist() {
    // 200 m cells over a ~1 km lattice: each cell holds few segments, so
    // a k larger than the local bucket forces radius expansion — the
    // answer must still produce k neighbors.
    let cfg = ServeConfig {
        grid_clen_m: 200.0,
        approx_radius: 1,
        ..fast_cfg()
    };
    let s = store(cfg);
    s.admit(embeddings(1.0)).expect("admission");
    let got = s
        .knn_approx(0, N - 1, Deadline::unbounded())
        .expect("expanding approx");
    assert_eq!(got.neighbors.len(), N - 1);
}

#[test]
fn snapshots_outlive_reloads() {
    let s = store(fast_cfg());
    s.admit(embeddings(1.0)).expect("gen 1");
    let old = s.snapshot().expect("snapshot of gen 1");
    s.admit(embeddings(2.0)).expect("gen 2");
    // The old generation's data is still fully readable through the Arc —
    // a reader mid-query during a flip finishes on a coherent matrix.
    assert_eq!(old.number(), 1);
    assert_eq!(old.embeddings().at(0, 0), 1.0);
    assert_eq!(s.snapshot().expect("snapshot of gen 2").number(), 2);
}

#[test]
fn health_reports_uptime_generation_age_and_optional_metrics() {
    let s = store(fast_cfg());
    // Loading: no generation yet, so no age; the store is already aging.
    let h = s.health();
    assert!(h.generation_age.is_none());
    assert!(h.uptime > Duration::ZERO);
    s.admit(embeddings(1.0)).expect("gen 1");
    std::thread::sleep(Duration::from_millis(2));
    let h = s.health();
    let age1 = h.generation_age.expect("a served generation has an age");
    assert!(age1 >= Duration::from_millis(2));
    assert!(
        h.uptime >= age1,
        "the store is at least as old as its generation"
    );
    // A fresh admission resets the staleness clock.
    s.admit(embeddings(2.0)).expect("gen 2");
    let age2 = s.health().generation_age.expect("age of gen 2");
    assert!(age2 < age1);
    // Metrics ride along only when telemetry is enabled (these tests run
    // with it off, so the report stays lean).
    if !sarn_obs::enabled() {
        assert!(h.metrics.is_none());
    }
}

#[test]
fn staleness_slo_turns_health_stale_and_a_fresh_admit_clears_it() {
    let cfg = ServeConfig {
        max_staleness: Some(Duration::from_millis(5)),
        ..fast_cfg()
    };
    let s = store(cfg);
    // No SLO breach while loading: there is no generation to be stale.
    assert_eq!(s.health().state, ServeState::Loading);

    s.admit(embeddings(1.0)).expect("gen 1");
    assert_eq!(s.health().state, ServeState::Serving { generation: 1 });
    std::thread::sleep(Duration::from_millis(8));
    match s.health().state {
        ServeState::Stale { generation, age } => {
            assert_eq!(generation, 1);
            assert!(age >= Duration::from_millis(5));
        }
        other => panic!("expected Stale, got {other:?}"),
    }
    // Queries still succeed while stale — stale beats unavailable.
    assert!(s.embedding(0, Deadline::unbounded()).is_ok());

    // A fresh admission clears the state (and re-arms the latch).
    s.admit(embeddings(2.0)).expect("gen 2");
    assert_eq!(s.health().state, ServeState::Serving { generation: 2 });

    // Degraded takes precedence over Stale: the failure explains the age.
    s.inject_fault(Some(LoadFault {
        fail_loads: u32::MAX,
        delay_ms: 0,
    }));
    let missing = tmp("stale_missing.emb");
    let _ = s.reload(&missing);
    std::thread::sleep(Duration::from_millis(8));
    match s.health().state {
        ServeState::Degraded { generation, .. } => assert_eq!(generation, 2),
        other => panic!("expected Degraded, got {other:?}"),
    }
}

#[test]
fn staleness_env_knob_parses_and_zero_disables() {
    // Not set (or zero): no SLO.
    std::env::remove_var("SARN_SERVE_MAX_STALENESS_S");
    assert!(ServeConfig::from_env()
        .expect("unset")
        .max_staleness
        .is_none());
    std::env::set_var("SARN_SERVE_MAX_STALENESS_S", "0");
    assert!(ServeConfig::from_env()
        .expect("zero")
        .max_staleness
        .is_none());
    std::env::set_var("SARN_SERVE_MAX_STALENESS_S", "2.5");
    assert_eq!(
        ServeConfig::from_env().expect("fractional").max_staleness,
        Some(Duration::from_secs_f64(2.5))
    );
    // Garbage is a typed error naming the knob, not a silent default.
    std::env::set_var("SARN_SERVE_MAX_STALENESS_S", "forever");
    let err = ServeConfig::from_env().expect_err("malformed staleness");
    assert_eq!(err.var, "SARN_SERVE_MAX_STALENESS_S");
    std::env::remove_var("SARN_SERVE_MAX_STALENESS_S");
}
