//! # sarn-tasks
//!
//! The SARN paper's downstream evaluation harness (§5.2): road property
//! (speed limit) prediction, trajectory similarity prediction, and
//! shortest-path distance prediction, each driven by an
//! [`EmbeddingSource`] that abstracts over frozen self-supervised
//! embeddings, SARN\* fine-tuning, and fully supervised end-to-end models.

#![warn(missing_docs)]

pub mod metrics;
mod road_property;
mod source;
mod spd;
mod traj_sim;

pub use road_property::{road_property, RoadPropertyConfig, RoadPropertyResult};
pub use source::{EmbedFn, EmbeddingSource};
pub use spd::{spd, SpdConfig, SpdResult};
pub use traj_sim::{traj_sim, TrajSimConfig, TrajSimResult};
