//! Evaluation metrics used across the three downstream tasks.

/// Macro-averaged F1 score over classes present in the ground truth.
pub fn macro_f1(truth: &[usize], pred: &[usize], num_classes: usize) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let mut f1_sum = 0.0;
    let mut classes = 0;
    for c in 0..num_classes {
        let tp = truth
            .iter()
            .zip(pred)
            .filter(|&(&t, &p)| t == c && p == c)
            .count() as f64;
        let fp = truth
            .iter()
            .zip(pred)
            .filter(|&(&t, &p)| t != c && p == c)
            .count() as f64;
        let fn_ = truth
            .iter()
            .zip(pred)
            .filter(|&(&t, &p)| t == c && p != c)
            .count() as f64;
        if tp + fn_ == 0.0 {
            continue; // class absent from ground truth
        }
        classes += 1;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = tp / (tp + fn_);
        if precision + recall > 0.0 {
            f1_sum += 2.0 * precision * recall / (precision + recall);
        }
    }
    if classes == 0 {
        0.0
    } else {
        f1_sum / classes as f64
    }
}

/// Macro-averaged one-vs-rest ROC AUC from per-class scores.
///
/// `scores[i]` holds a score per class for example `i` (e.g. softmax
/// probabilities). Classes absent from the ground truth, or present in every
/// example, are skipped.
pub fn macro_auc_ovr(truth: &[usize], scores: &[Vec<f64>], num_classes: usize) -> f64 {
    assert_eq!(truth.len(), scores.len());
    let mut auc_sum = 0.0;
    let mut classes = 0;
    for c in 0..num_classes {
        let pos: Vec<f64> = truth
            .iter()
            .zip(scores)
            .filter(|&(&t, _)| t == c)
            .map(|(_, s)| s[c])
            .collect();
        let neg: Vec<f64> = truth
            .iter()
            .zip(scores)
            .filter(|&(&t, _)| t != c)
            .map(|(_, s)| s[c])
            .collect();
        if pos.is_empty() || neg.is_empty() {
            continue;
        }
        classes += 1;
        // AUC = P(score_pos > score_neg) + 0.5 P(tie), by pair counting.
        let mut wins = 0.0;
        for &p in &pos {
            for &n in &neg {
                if p > n {
                    wins += 1.0;
                } else if (p - n).abs() < 1e-12 {
                    wins += 0.5;
                }
            }
        }
        auc_sum += wins / (pos.len() * neg.len()) as f64;
    }
    if classes == 0 {
        0.0
    } else {
        auc_sum / classes as f64
    }
}

/// Hit ratio `HR@k`: fraction of the true top-`k` items found in the
/// predicted top-`k` (averaged over queries by the caller).
pub fn hit_ratio_at_k(true_ranking: &[usize], pred_ranking: &[usize], k: usize) -> f64 {
    let k = k.min(true_ranking.len()).min(pred_ranking.len());
    if k == 0 {
        return 0.0;
    }
    let true_top: std::collections::HashSet<usize> = true_ranking[..k].iter().copied().collect();
    let hits = pred_ranking[..k]
        .iter()
        .filter(|i| true_top.contains(i))
        .count();
    hits as f64 / k as f64
}

/// `R5@20`-style recall: fraction of the true top-`k_true` found in the
/// predicted top-`k_pred`.
pub fn recall_k_at_m(
    true_ranking: &[usize],
    pred_ranking: &[usize],
    k_true: usize,
    k_pred: usize,
) -> f64 {
    let k_true = k_true.min(true_ranking.len());
    let k_pred = k_pred.min(pred_ranking.len());
    if k_true == 0 {
        return 0.0;
    }
    let true_top: std::collections::HashSet<usize> =
        true_ranking[..k_true].iter().copied().collect();
    let hits = pred_ranking[..k_pred]
        .iter()
        .filter(|i| true_top.contains(i))
        .count();
    hits as f64 / k_true as f64
}

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len().max(1) as f64
}

/// Mean relative error `|pred - true| / true` (zero-truth pairs skipped).
pub fn mre(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let mut sum = 0.0;
    let mut n = 0;
    for (t, p) in truth.iter().zip(pred) {
        if *t > 0.0 {
            sum += (t - p).abs() / t;
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

/// Ranking of indices `0..n` (excluding `query`) by ascending key.
pub fn ranking_by<F: Fn(usize) -> f64>(n: usize, query: usize, key: F) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).filter(|&i| i != query).collect();
    idx.sort_by(|&a, &b| {
        key(a)
            .partial_cmp(&key(b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// Mean and (population) standard deviation of repeated measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Mean value.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
}

impl Stats {
    /// Computes stats over the samples (0/0 for an empty slice).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                mean: 0.0,
                std: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        Self {
            mean,
            std: var.sqrt(),
        }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}±{:.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_perfect_and_inverted() {
        let truth = vec![0, 1, 0, 1];
        assert_eq!(macro_f1(&truth, &truth, 2), 1.0);
        let flipped = vec![1, 0, 1, 0];
        assert_eq!(macro_f1(&truth, &flipped, 2), 0.0);
    }

    #[test]
    fn f1_skips_absent_classes() {
        let truth = vec![0, 0, 0];
        let pred = vec![0, 0, 1];
        // class 1 absent from truth -> only class 0 counted.
        let f1 = macro_f1(&truth, &pred, 3);
        assert!((f1 - 0.8).abs() < 1e-9); // p = 1, r = 2/3 -> f1 = 0.8
    }

    #[test]
    fn auc_separable_is_one_random_is_half() {
        let truth = vec![1, 1, 0, 0];
        let scores = vec![
            vec![0.1, 0.9],
            vec![0.2, 0.8],
            vec![0.8, 0.2],
            vec![0.9, 0.1],
        ];
        assert!((macro_auc_ovr(&truth, &scores, 2) - 1.0).abs() < 1e-9);
        let tied = vec![vec![0.5, 0.5]; 4];
        assert!((macro_auc_ovr(&truth, &tied, 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hit_ratio_counts_overlap() {
        let truth = vec![3, 1, 4, 1, 5];
        let pred = vec![3, 9, 4, 2, 6];
        assert!((hit_ratio_at_k(&truth, &pred, 3) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(hit_ratio_at_k(&truth, &truth, 5), 1.0);
    }

    #[test]
    fn recall_5_at_20_finds_all_when_contained() {
        let truth: Vec<usize> = (0..5).collect();
        let pred: Vec<usize> = (0..20).rev().collect();
        assert_eq!(recall_k_at_m(&truth, &pred, 5, 20), 1.0);
        let pred_missing: Vec<usize> = (10..30).collect();
        assert_eq!(recall_k_at_m(&truth, &pred_missing, 5, 20), 0.0);
    }

    #[test]
    fn mae_mre_basics() {
        let t = vec![100.0, 200.0];
        let p = vec![110.0, 180.0];
        assert!((mae(&t, &p) - 15.0).abs() < 1e-9);
        assert!((mre(&t, &p) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn ranking_sorts_and_excludes_query() {
        let d = [0.0, 3.0, 1.0, 2.0];
        let r = ranking_by(4, 0, |i| d[i]);
        assert_eq!(r, vec![2, 3, 1]);
    }

    #[test]
    fn stats_mean_std() {
        let s = Stats::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert!((s.std - 2.0).abs() < 1e-9);
    }
}
