//! Downstream task 1: road property (speed limit) prediction (§5.2.1).
//!
//! A one-hidden-layer FFN (32 nodes) classifies each labeled segment's
//! speed limit from its embedding; 6:2:2 split; F1 and one-vs-rest AUC.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sarn_roadnet::RoadNetwork;
use sarn_tensor::layers::{Activation, Ffn};
use sarn_tensor::optim::{Adam, EarlyStopping};
use sarn_tensor::Graph;
use sarn_traj::split_indices;

use crate::metrics::{macro_auc_ovr, macro_f1};
use crate::source::EmbeddingSource;

/// Probe configuration for the road property task.
#[derive(Clone, Debug)]
pub struct RoadPropertyConfig {
    /// Hidden width of the classifier (paper: 32).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Early-stopping patience (on validation loss).
    pub patience: u32,
    /// Learning rate.
    pub lr: f32,
    /// Split / init seed.
    pub seed: u64,
}

impl Default for RoadPropertyConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            epochs: 120,
            patience: 15,
            lr: 0.01,
            seed: 5,
        }
    }
}

/// Result of the road property task.
#[derive(Clone, Copy, Debug)]
pub struct RoadPropertyResult {
    /// Macro F1, percent.
    pub f1_pct: f64,
    /// Macro one-vs-rest AUC, percent.
    pub auc_pct: f64,
}

/// Trains the speed-limit classifier on a source of embeddings and
/// evaluates on the held-out test split.
///
/// # Panics
/// Panics if the network has fewer than 10 labeled segments.
pub fn road_property(
    net: &RoadNetwork,
    source: &mut EmbeddingSource,
    cfg: &RoadPropertyConfig,
) -> RoadPropertyResult {
    let labeled = net.labeled_segments();
    assert!(labeled.len() >= 10, "too few labeled segments");
    // Speed values -> dense class ids.
    let mut values: Vec<u32> = labeled
        .iter()
        .map(|&i| net.segment(i).speed_limit_kmh.unwrap())
        .collect();
    values.sort_unstable();
    values.dedup();
    let class_of = |speed: u32| values.binary_search(&speed).unwrap();
    let labels: Vec<usize> = labeled
        .iter()
        .map(|&i| class_of(net.segment(i).speed_limit_kmh.unwrap()))
        .collect();
    let num_classes = values.len();

    let (train, val, test) = split_indices(labeled.len(), cfg.seed);
    let seg_ids = |split: &[usize]| -> Vec<usize> { split.iter().map(|&k| labeled[k]).collect() };
    let label_ids = |split: &[usize]| -> Vec<usize> { split.iter().map(|&k| labels[k]).collect() };
    let (train_segs, val_segs, test_segs) = (seg_ids(&train), seg_ids(&val), seg_ids(&test));
    let (train_y, val_y, test_y) = (label_ids(&train), label_ids(&val), label_ids(&test));

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF1);
    let head = Ffn::new(
        &mut source.store,
        &mut rng,
        "prop_head",
        &[source.d, cfg.hidden, num_classes],
        Activation::Relu,
    );
    let mut opt = Adam::new(cfg.lr);
    let mut stopper = EarlyStopping::new(cfg.patience);

    for _ in 0..cfg.epochs {
        source.store.zero_grads();
        let g = Graph::new();
        let h_all = source.embed(&g);
        let h_train = g.gather_rows(h_all, &train_segs);
        let logits = head.forward(&g, &source.store, h_train);
        let loss = g.cross_entropy(logits, &train_y);
        g.backward(loss);
        g.accumulate_grads(&mut source.store);
        source.mask_frozen_grads();
        opt.step(&mut source.store);

        // Validation loss for early stopping.
        let gv = Graph::new();
        let h_all = source.embed(&gv);
        let h_val = gv.gather_rows(h_all, &val_segs);
        let vlogits = head.forward(&gv, &source.store, h_val);
        let vloss = gv.value(gv.cross_entropy(vlogits, &val_y)).item();
        if stopper.update(vloss) {
            break;
        }
    }

    // Test evaluation.
    let g = Graph::new();
    let h_all = source.embed(&g);
    let h_test = g.gather_rows(h_all, &test_segs);
    let logits = head.forward(&g, &source.store, h_test);
    let probs = g.value(g.softmax_rows(logits));
    let pred: Vec<usize> = (0..test_segs.len())
        .map(|i| {
            probs
                .row_slice(i)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(c, _)| c)
                .unwrap()
        })
        .collect();
    let scores: Vec<Vec<f64>> = (0..test_segs.len())
        .map(|i| probs.row_slice(i).iter().map(|&v| v as f64).collect())
        .collect();
    RoadPropertyResult {
        f1_pct: 100.0 * macro_f1(&test_y, &pred, num_classes),
        auc_pct: 100.0 * macro_auc_ovr(&test_y, &scores, num_classes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};
    use sarn_tensor::Tensor;

    fn labeled_net() -> RoadNetwork {
        // SF preset has the highest label fraction.
        SynthConfig::city(City::SanFrancisco)
            .scaled(0.35)
            .generate()
    }

    #[test]
    fn informative_embeddings_beat_random_ones() {
        let net = labeled_net();
        // "Informative": one-hot-ish encoding of the true class.
        let labeled = net.labeled_segments();
        assert!(labeled.len() >= 30);
        let n = net.num_segments();
        let d = 12;
        let mut informative = Tensor::zeros(n, d);
        for i in 0..n {
            if let Some(s) = net.segment(i).speed_limit_kmh {
                informative.set(i, (s as usize / 10) % d, 1.0);
            }
        }
        let mut rng = StdRng::seed_from_u64(7);
        let random = sarn_tensor::init::normal(&mut rng, n, d, 1.0);

        let cfg = RoadPropertyConfig {
            epochs: 60,
            ..Default::default()
        };
        let mut src_good = EmbeddingSource::frozen(&informative);
        let good = road_property(&net, &mut src_good, &cfg);
        let mut src_bad = EmbeddingSource::frozen(&random);
        let bad = road_property(&net, &mut src_bad, &cfg);
        assert!(
            good.f1_pct > bad.f1_pct + 10.0,
            "good {} vs bad {}",
            good.f1_pct,
            bad.f1_pct
        );
        assert!(good.auc_pct > 90.0, "auc {}", good.auc_pct);
    }

    #[test]
    fn results_are_percentages() {
        let net = labeled_net();
        let n = net.num_segments();
        let mut rng = StdRng::seed_from_u64(3);
        let emb = sarn_tensor::init::normal(&mut rng, n, 8, 1.0);
        let cfg = RoadPropertyConfig {
            epochs: 10,
            ..Default::default()
        };
        let mut src = EmbeddingSource::frozen(&emb);
        let r = road_property(&net, &mut src, &cfg);
        assert!((0.0..=100.0).contains(&r.f1_pct));
        assert!((0.0..=100.0).contains(&r.auc_pct));
    }
}
