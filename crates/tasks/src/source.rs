//! Embedding sources: where a downstream task gets its segment embeddings.
//!
//! The paper evaluates three regimes (§5.2):
//! - **frozen** self-supervised embeddings with a small trainable probe;
//! - **fine-tuned** SARN\* — the final GAT layer trains together with the
//!   task head;
//! - **end-to-end supervised** models (HRNR) where everything trains.
//!
//! [`EmbeddingSource`] abstracts over all three: it materializes the
//! `n x d` embedding matrix on a task's autograd tape and says which base
//! parameters may receive gradients (task-head parameters registered later
//! into [`EmbeddingSource::store`] always train).

use sarn_core::SarnTrained;
use sarn_tensor::{Graph, ParamId, ParamStore, Tensor, Var};

/// Closure materializing the embedding matrix on a tape.
pub type EmbedFn<'a> = Box<dyn Fn(&Graph, &ParamStore) -> Var + 'a>;

/// A source of segment embeddings for a downstream task.
pub struct EmbeddingSource<'a> {
    embed: EmbedFn<'a>,
    /// Base parameters (plus any task-head parameters the task registers).
    pub store: ParamStore,
    /// Base parameters allowed to train: `None` = all, `Some(ids)` = only
    /// the listed ones (e.g. SARN\*'s final GAT layer). Parameters added to
    /// [`EmbeddingSource::store`] after construction always train.
    trainable_base: Option<Vec<ParamId>>,
    base_len: usize,
    /// Embedding width `d`.
    pub d: usize,
}

impl<'a> EmbeddingSource<'a> {
    /// Frozen embeddings: the matrix enters the tape as a constant.
    pub fn frozen(embeddings: &'a Tensor) -> Self {
        let d = embeddings.cols();
        Self {
            embed: Box::new(move |g, _| g.input(embeddings.clone())),
            store: ParamStore::new(),
            trainable_base: Some(Vec::new()),
            base_len: 0,
            d,
        }
    }

    /// SARN\* fine-tuning: the trained model's forward pass runs on the task
    /// tape and only the final GAT layer of `F` receives gradients.
    pub fn sarn_finetune(trained: &'a SarnTrained) -> Self {
        let d = trained.embeddings.cols();
        let store = trained.model.store.clone();
        let base_len = store.len();
        Self {
            embed: Box::new(move |g, store| trained.model.encode(g, store, &trained.full_edges)),
            store,
            trainable_base: Some(trained.model.last_gat_layer_ids()),
            base_len,
            d,
        }
    }

    /// A fully trainable model (e.g. HRNR): `embed` runs the model's forward
    /// pass against the given store; every parameter trains.
    pub fn trainable_model(embed: EmbedFn<'a>, store: ParamStore, d: usize) -> Self {
        let base_len = store.len();
        Self {
            embed,
            store,
            trainable_base: None,
            base_len,
            d,
        }
    }

    /// Materializes the `n x d` embedding matrix on a tape.
    pub fn embed(&self, g: &Graph) -> Var {
        (self.embed)(g, &self.store)
    }

    /// Zeroes the gradients of every base parameter that must stay frozen.
    /// Call between `accumulate_grads` and the optimizer step.
    pub fn mask_frozen_grads(&mut self) {
        if let Some(keep) = &self.trainable_base {
            let keep_set: std::collections::HashSet<usize> =
                keep.iter().map(|p| p.index()).collect();
            let base_len = self.base_len;
            let ids: Vec<ParamId> = self.store.ids().collect();
            for id in ids {
                let is_base = id.index() < base_len;
                if is_base && !keep_set.contains(&id.index()) {
                    self.store.grad_mut(id).scale_mut(0.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_source_materializes_constant() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let src = EmbeddingSource::frozen(&t);
        assert_eq!(src.d, 3);
        let g = Graph::new();
        let v = src.embed(&g);
        assert_eq!(g.value(v), t);
    }

    #[test]
    fn mask_frozen_grads_spares_head_params() {
        let t = Tensor::ones(2, 3);
        let mut src = EmbeddingSource::frozen(&t);
        // A "head" parameter registered by the task.
        let head = src.store.add("head", Tensor::ones(1, 2));
        src.store.grad_mut(head).axpy(1.0, &Tensor::ones(1, 2));
        src.mask_frozen_grads();
        assert!(src.store.grad(head).norm_sq() > 0.0);
    }
}
