//! Downstream task 3: shortest-path distance prediction (§5.2.3).
//!
//! An FFN with a 20-node hidden layer predicts the shortest-path distance
//! between two segments from the per-dimension difference of their
//! embeddings; MSE training on sampled reachable pairs, MAE/MRE reporting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sarn_graph::dijkstra;
use sarn_roadnet::RoadNetwork;
use sarn_tensor::layers::{Activation, Ffn};
use sarn_tensor::optim::Adam;
use sarn_tensor::{Graph, Tensor};

use crate::metrics::{mae, mre};
use crate::source::EmbeddingSource;

/// Probe configuration for the SPD task.
#[derive(Clone, Debug)]
pub struct SpdConfig {
    /// Hidden width of the regressor (paper: 20).
    pub hidden: usize,
    /// Training pairs (paper: 1‰ of reachable pairs).
    pub train_pairs: usize,
    /// Test pairs (paper: 0.01‰).
    pub test_pairs: usize,
    /// Epochs over the training pairs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for SpdConfig {
    fn default() -> Self {
        Self {
            hidden: 20,
            train_pairs: 4000,
            test_pairs: 400,
            epochs: 30,
            batch_size: 256,
            lr: 0.01,
            seed: 8,
        }
    }
}

impl SpdConfig {
    /// Minimal configuration for tests.
    pub fn tiny() -> Self {
        Self {
            train_pairs: 1500,
            test_pairs: 200,
            epochs: 25,
            ..Default::default()
        }
    }
}

/// Result of the SPD task (lower is better).
#[derive(Clone, Copy, Debug)]
pub struct SpdResult {
    /// Mean absolute error, meters.
    pub mae_m: f64,
    /// Mean relative error, percent.
    pub mre_pct: f64,
}

/// Samples `(src, dst, spd)` triples from Dijkstra trees rooted at random
/// sources.
fn sample_pairs(net: &RoadNetwork, count: usize, rng: &mut StdRng) -> Vec<(usize, usize, f64)> {
    let routing = net.routing_digraph();
    let n = net.num_segments();
    let per_source = 40;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let src = rng.gen_range(0..n);
        let dist = dijkstra(&routing, src);
        for _ in 0..per_source {
            if out.len() >= count {
                break;
            }
            let dst = rng.gen_range(0..n);
            if dst != src && dist[dst].is_finite() && dist[dst] > 0.0 {
                out.push((src, dst, dist[dst]));
            }
        }
    }
    out
}

/// Trains the SPD regressor on a source of embeddings and evaluates on
/// held-out pairs.
pub fn spd(net: &RoadNetwork, source: &mut EmbeddingSource, cfg: &SpdConfig) -> SpdResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5D);
    let train = sample_pairs(net, cfg.train_pairs, &mut rng);
    let test = sample_pairs(net, cfg.test_pairs, &mut rng);
    let scale = (train.iter().map(|t| t.2).sum::<f64>() / train.len().max(1) as f64).max(1.0);

    let head = Ffn::new(
        &mut source.store,
        &mut rng,
        "spd_head",
        &[source.d, cfg.hidden, 1],
        Activation::Relu,
    );
    let mut opt = Adam::new(cfg.lr);

    for _ in 0..cfg.epochs {
        for chunk in train.chunks(cfg.batch_size) {
            let is: Vec<usize> = chunk.iter().map(|t| t.0).collect();
            let js: Vec<usize> = chunk.iter().map(|t| t.1).collect();
            let target = Tensor::col(
                &chunk
                    .iter()
                    .map(|t| (t.2 / scale) as f32)
                    .collect::<Vec<_>>(),
            );
            source.store.zero_grads();
            let g = Graph::new();
            let h_all = source.embed(&g);
            let diff = g.sub(g.gather_rows(h_all, &is), g.gather_rows(h_all, &js));
            let pred = head.forward(&g, &source.store, diff);
            let loss = g.mse(pred, &target);
            g.backward(loss);
            g.accumulate_grads(&mut source.store);
            source.mask_frozen_grads();
            opt.step(&mut source.store);
        }
    }

    // Test.
    let is: Vec<usize> = test.iter().map(|t| t.0).collect();
    let js: Vec<usize> = test.iter().map(|t| t.1).collect();
    let truth: Vec<f64> = test.iter().map(|t| t.2).collect();
    let g = Graph::new();
    let h_all = source.embed(&g);
    let diff = g.sub(g.gather_rows(h_all, &is), g.gather_rows(h_all, &js));
    let pred_t = g.value(head.forward(&g, &source.store, diff));
    let pred: Vec<f64> = (0..test.len())
        .map(|i| (pred_t.at(i, 0) as f64 * scale).max(0.0))
        .collect();
    SpdResult {
        mae_m: mae(&truth, &pred),
        mre_pct: 100.0 * mre(&truth, &pred),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};

    #[test]
    fn coordinate_embeddings_predict_spd_reasonably() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.3).generate();
        // Embeddings = scaled planar coordinates: SPD on a city grid is
        // highly correlated with L1 coordinate distance, so the probe
        // should reach a moderate MRE.
        let bbox = net.bbox();
        let proj = sarn_geo::LocalProjection::new(sarn_geo::Point::new(bbox.min_lat, bbox.min_lon));
        let ext = bbox.width_m().max(bbox.height_m());
        let mut coord = Tensor::zeros(net.num_segments(), 2);
        for i in 0..net.num_segments() {
            let (x, y) = proj.project(&net.segment(i).midpoint());
            coord.set(i, 0, (x / ext) as f32);
            coord.set(i, 1, (y / ext) as f32);
        }
        let mut rng = StdRng::seed_from_u64(11);
        let random = sarn_tensor::init::normal(&mut rng, net.num_segments(), 2, 1.0);

        let cfg = SpdConfig::tiny();
        let mut src_good = EmbeddingSource::frozen(&coord);
        let good = spd(&net, &mut src_good, &cfg);
        let mut src_bad = EmbeddingSource::frozen(&random);
        let bad = spd(&net, &mut src_bad, &cfg);
        assert!(
            good.mre_pct < bad.mre_pct,
            "good {} vs bad {}",
            good.mre_pct,
            bad.mre_pct
        );
        assert!(good.mae_m > 0.0 && good.mae_m.is_finite());
    }

    #[test]
    fn sampled_pairs_have_positive_finite_distances() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.25).generate();
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = sample_pairs(&net, 100, &mut rng);
        assert_eq!(pairs.len(), 100);
        for (i, j, d) in pairs {
            assert_ne!(i, j);
            assert!(d > 0.0 && d.is_finite());
        }
    }
}
