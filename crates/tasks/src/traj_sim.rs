//! Downstream task 2: trajectory similarity prediction (§5.2.2).
//!
//! A 2-layer GRU over a trajectory's segment embeddings produces a
//! trajectory embedding whose L1 distance predicts the Fréchet distance;
//! top-k retrieval quality is reported as HR@5, HR@20, and R5@20.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sarn_roadnet::RoadNetwork;
use sarn_tensor::layers::GruStack;
use sarn_tensor::optim::Adam;
use sarn_tensor::{Graph, Tensor, Var};
use sarn_traj::{split_indices, MatchedTrajectory, TrajDataset};

use crate::metrics::{hit_ratio_at_k, ranking_by, recall_k_at_m};
use crate::source::EmbeddingSource;

/// Probe configuration for the trajectory similarity task.
#[derive(Clone, Debug)]
pub struct TrajSimConfig {
    /// GRU hidden width (the trajectory embedding size).
    pub hidden: usize,
    /// GRU layers (paper: 2).
    pub n_layers: usize,
    /// Training pairs per epoch.
    pub pairs_per_epoch: usize,
    /// Pair mini-batch size.
    pub batch_size: usize,
    /// Epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Split / init seed.
    pub seed: u64,
}

impl Default for TrajSimConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            n_layers: 2,
            pairs_per_epoch: 1500,
            batch_size: 32,
            epochs: 5,
            lr: 0.005,
            seed: 6,
        }
    }
}

impl TrajSimConfig {
    /// Minimal configuration for tests.
    pub fn tiny() -> Self {
        Self {
            hidden: 12,
            pairs_per_epoch: 150,
            batch_size: 16,
            epochs: 3,
            ..Default::default()
        }
    }
}

/// Result of the trajectory similarity task.
#[derive(Clone, Copy, Debug)]
pub struct TrajSimResult {
    /// HR@5, percent.
    pub hr5_pct: f64,
    /// HR@20, percent.
    pub hr20_pct: f64,
    /// R5@20, percent.
    pub r5at20_pct: f64,
}

/// Records the batched trajectory encoder on a tape: per step, the segment
/// rows are gathered from the live embedding matrix (padded + masked).
fn encode_batch(
    g: &Graph,
    h_all: Var,
    probe: &GruStack,
    store: &sarn_tensor::ParamStore,
    trajs: &[&MatchedTrajectory],
) -> Var {
    let max_len = trajs.iter().map(|t| t.len()).max().unwrap_or(1);
    let b = trajs.len();
    let mut xs = Vec::with_capacity(max_len);
    let mut masks = Vec::with_capacity(max_len);
    for t in 0..max_len {
        let mut ids = Vec::with_capacity(b);
        let mut mask = Tensor::zeros(b, 1);
        for (i, tr) in trajs.iter().enumerate() {
            match tr.segments.get(t) {
                Some(&sid) => {
                    ids.push(sid);
                    mask.set(i, 0, 1.0);
                }
                None => ids.push(0),
            }
        }
        xs.push(g.gather_rows(h_all, &ids));
        masks.push(mask);
    }
    probe.run(g, store, &xs, Some(&masks))
}

/// Trains the GRU probe on a source of segment embeddings and evaluates
/// top-k retrieval on the test split.
///
/// # Panics
/// Panics if the dataset holds fewer than 15 trajectories.
pub fn traj_sim(
    net: &RoadNetwork,
    data: &TrajDataset,
    source: &mut EmbeddingSource,
    cfg: &TrajSimConfig,
) -> TrajSimResult {
    assert!(data.len() >= 15, "too few trajectories: {}", data.len());
    let (train, _val, test) = split_indices(data.len(), cfg.seed);
    let train_frechet = data.frechet_matrix(net, &train);
    let m = train.len();
    let scale = (train_frechet.iter().sum::<f64>() / (m * m).max(1) as f64).max(1.0);

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7A);
    let probe = GruStack::new(
        &mut source.store,
        &mut rng,
        "traj_probe",
        source.d,
        cfg.hidden,
        cfg.n_layers,
    );
    let mut opt = Adam::new(cfg.lr);

    for _ in 0..cfg.epochs {
        let pairs: Vec<(usize, usize)> = (0..cfg.pairs_per_epoch)
            .map(|_| (rng.gen_range(0..m), rng.gen_range(0..m)))
            .filter(|(a, b)| a != b)
            .collect();
        for chunk in pairs.chunks(cfg.batch_size) {
            let lhs: Vec<&MatchedTrajectory> = chunk
                .iter()
                .map(|&(a, _)| &data.trajectories[train[a]])
                .collect();
            let rhs: Vec<&MatchedTrajectory> = chunk
                .iter()
                .map(|&(_, b)| &data.trajectories[train[b]])
                .collect();
            let target = Tensor::col(
                &chunk
                    .iter()
                    .map(|&(a, b)| (train_frechet[a * m + b] / scale) as f32)
                    .collect::<Vec<_>>(),
            );
            source.store.zero_grads();
            let g = Graph::new();
            let h_all = source.embed(&g);
            let ea = encode_batch(&g, h_all, &probe, &source.store, &lhs);
            let eb = encode_batch(&g, h_all, &probe, &source.store, &rhs);
            let l1 = g.sum_rows(g.abs(g.sub(ea, eb)));
            let loss = g.mse(l1, &target);
            g.backward(loss);
            g.accumulate_grads(&mut source.store);
            source.mask_frozen_grads();
            opt.step(&mut source.store);
        }
    }

    // Test evaluation: embed all test trajectories, rank by predicted L1.
    let test_refs: Vec<&MatchedTrajectory> = test.iter().map(|&i| &data.trajectories[i]).collect();
    let g = Graph::new();
    let h_all = source.embed(&g);
    let emb = g.value(encode_batch(&g, h_all, &probe, &source.store, &test_refs));
    let truth = data.frechet_matrix(net, &test);
    let k = test.len();
    let pred_dist = |a: usize, b: usize| -> f64 {
        emb.row_slice(a)
            .iter()
            .zip(emb.row_slice(b))
            .map(|(x, y)| (x - y).abs() as f64)
            .sum()
    };
    let (mut hr5, mut hr20, mut r520) = (0.0, 0.0, 0.0);
    for q in 0..k {
        let true_rank = ranking_by(k, q, |i| truth[q * k + i]);
        let pred_rank = ranking_by(k, q, |i| pred_dist(q, i));
        hr5 += hit_ratio_at_k(&true_rank, &pred_rank, 5);
        hr20 += hit_ratio_at_k(&true_rank, &pred_rank, 20);
        r520 += recall_k_at_m(&true_rank, &pred_rank, 5, 20);
    }
    TrajSimResult {
        hr5_pct: 100.0 * hr5 / k as f64,
        hr20_pct: 100.0 * hr20 / k as f64,
        r5at20_pct: 100.0 * r520 / k as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};
    use sarn_traj::TrajGenConfig;

    fn setup() -> (RoadNetwork, TrajDataset) {
        let net = SynthConfig::city(City::Chengdu).scaled(0.3).generate();
        let gen = TrajGenConfig {
            count: 60,
            min_segments: 6,
            max_segments: 15,
            ..Default::default()
        };
        let data = TrajDataset::build(&net, &gen, 15);
        (net, data)
    }

    /// Coordinate-aware embeddings: normalized midpoint + heading.
    fn coord_embeddings(net: &RoadNetwork) -> Tensor {
        let bbox = net.bbox();
        let proj = sarn_geo::LocalProjection::new(sarn_geo::Point::new(bbox.min_lat, bbox.min_lon));
        let ext = bbox.width_m().max(bbox.height_m());
        let mut t = Tensor::zeros(net.num_segments(), 4);
        for i in 0..net.num_segments() {
            let s = net.segment(i);
            let (x, y) = proj.project(&s.midpoint());
            t.set(i, 0, (x / ext) as f32);
            t.set(i, 1, (y / ext) as f32);
            t.set(i, 2, s.radian.sin() as f32);
            t.set(i, 3, s.radian.cos() as f32);
        }
        t
    }

    #[test]
    fn spatial_embeddings_beat_random_on_retrieval() {
        let (net, data) = setup();
        let coord = coord_embeddings(&net);
        let mut rng = StdRng::seed_from_u64(2);
        let random = sarn_tensor::init::normal(&mut rng, net.num_segments(), 4, 1.0);
        let mut cfg = TrajSimConfig::tiny();
        cfg.epochs = 6;
        cfg.pairs_per_epoch = 300;
        let mut src_good = EmbeddingSource::frozen(&coord);
        let good = traj_sim(&net, &data, &mut src_good, &cfg);
        let mut src_bad = EmbeddingSource::frozen(&random);
        let bad = traj_sim(&net, &data, &mut src_bad, &cfg);
        assert!(
            good.hr5_pct >= bad.hr5_pct,
            "good {} vs bad {}",
            good.hr5_pct,
            bad.hr5_pct
        );
        assert!(good.hr20_pct > 0.0);
        assert!(good.r5at20_pct <= 100.0);
    }
}
