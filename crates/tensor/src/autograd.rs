//! Reverse-mode automatic differentiation on a tape.
//!
//! A [`Graph`] records every operation applied to [`Var`] handles during a
//! forward pass. [`Graph::backward`] then walks the tape in reverse, routing
//! gradients to each input. Model parameters live outside the graph in a
//! [`ParamStore`]; [`Graph::param`] copies the current value onto the tape and
//! remembers the parameter id so [`Graph::accumulate_grads`] can push the
//! computed gradients back after the backward pass.
//!
//! Gradient bookkeeping is sparse: a node participates in backpropagation
//! only if a parameter is reachable from it, so large constant inputs (for
//! example MoCo negative-sample queues) cost nothing at backward time.

//! Like the raw tensor kernels, the rowwise, segment, and loss ops here run
//! on the [`sarn_par`] thread count above per-op work thresholds. Segment
//! and scatter ops partition **destination rows** into contiguous ranges;
//! each worker scans the full edge list in ascending order and applies only
//! the edges that land in its range, so the per-row accumulation order — and
//! therefore every bit of the result — matches the serial path.

use std::cell::RefCell;
use std::rc::Rc;

use crate::params::{ParamId, ParamStore};
use crate::tensor::{Tensor, PAR_MIN_ELEMS};

/// Parallelize segment/scatter ops only above this many edges.
const PAR_MIN_EDGES: usize = 2048;

/// Parallelize the InfoNCE loss only above this many anchors.
const PAR_MIN_ANCHORS: usize = 32;

/// `min_len`/`min_per_call` value that engages parallelism iff `engage`.
#[inline]
fn par_gate(engage: bool) -> usize {
    if engage {
        0
    } else {
        usize::MAX
    }
}

/// Handle to a node on a [`Graph`] tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    pub(crate) id: usize,
}

enum Op {
    Leaf,
    MatMul(usize, usize),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    /// `(n x m) + (1 x m)` row-broadcast addition (bias).
    AddRow(usize, usize),
    /// `(n x m) * (n x 1)` column-broadcast multiplication.
    MulCol(usize, usize),
    Scale(usize, f32),
    AddScalar(usize),
    Neg(usize),
    Exp(usize),
    Ln(usize),
    Abs(usize),
    Sqr(usize),
    Relu(usize),
    LeakyRelu(usize, f32),
    Elu(usize, f32),
    Sigmoid(usize),
    Tanh(usize),
    OneMinus(usize),
    SoftmaxRows(usize),
    L2NormalizeRows(usize),
    SumAll(usize),
    MeanAll(usize),
    SumRows(usize),
    Transpose(usize),
    ConcatCols(Vec<usize>),
    ConcatRows(Vec<usize>),
    GatherRows {
        src: usize,
        idx: Rc<Vec<usize>>,
    },
    SliceRows {
        src: usize,
        start: usize,
    },
    /// Softmax over groups of rows of an `e x 1` score column; `seg[e]` is the
    /// group id of edge `e` and `nseg` the number of groups.
    SegmentSoftmax {
        scores: usize,
        seg: Rc<Vec<usize>>,
        nseg: usize,
    },
    /// `out[seg[e]] += alpha[e] * values[e]` — the weighted aggregation step
    /// of sparse graph attention.
    SegmentWeightedSum {
        alpha: usize,
        values: usize,
        seg: Rc<Vec<usize>>,
    },
    /// [`Op::SegmentWeightedSum`] with an ELU applied to the aggregated
    /// output in the same pass (`y = elu(sum)`), saving the GAT encoder a
    /// full tape node and an extra sweep over the hidden matrix between
    /// layers.
    SegmentWeightedSumElu {
        alpha: usize,
        values: usize,
        seg: Rc<Vec<usize>>,
        elu_alpha: f32,
    },
    /// Mean cross-entropy of row-logits against integer labels.
    CrossEntropy {
        logits: usize,
        labels: Rc<Vec<usize>>,
    },
    /// Mean squared error against a constant target.
    MseConst {
        pred: usize,
        target: Rc<Tensor>,
    },
    /// Mean InfoNCE loss. For each row `i` of `z`, `cands[i]` is a
    /// `(k_i x d)` candidate matrix whose row 0 is the positive sample; all
    /// candidates are detached constants (MoCo-style), so gradients flow only
    /// into `z`.
    InfoNce {
        z: usize,
        cands: Rc<Vec<Tensor>>,
        tau: f32,
    },
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    needs_grad: bool,
    param: Option<ParamId>,
}

/// An autograd tape. Create one per forward/backward pass.
#[derive(Default)]
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&self, value: Tensor, op: Op, needs_grad: bool, param: Option<ParamId>) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            grad: None,
            op,
            needs_grad,
            param,
        });
        Var {
            id: nodes.len() - 1,
        }
    }

    fn needs(&self, id: usize) -> bool {
        self.nodes.borrow()[id].needs_grad
    }

    /// Adds a constant input (no gradient is computed for it).
    pub fn input(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, false, None)
    }

    /// Adds a leaf that requires a gradient but is not a registered
    /// parameter. Useful in tests and for gradient checking.
    pub fn leaf_grad(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, true, None)
    }

    /// Adds the current value of a parameter to the tape.
    pub fn param(&self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Leaf, true, Some(id))
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes.borrow()[v.id].value.shape()
    }

    /// Clones a node's value off the tape.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.id].value.clone()
    }

    /// Clones a node's gradient, if one was computed.
    pub fn grad(&self, v: Var) -> Option<Tensor> {
        self.nodes.borrow()[v.id].grad.clone()
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    // ---- ops ------------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.matmul(&nodes[b.id].value)
        };
        let needs = self.needs(a.id) || self.needs(b.id);
        self.push(v, Op::MatMul(a.id, b.id), needs, None)
    }

    /// Elementwise sum of two same-shape tensors.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.zip(&nodes[b.id].value, |x, y| x + y)
        };
        let needs = self.needs(a.id) || self.needs(b.id);
        self.push(v, Op::Add(a.id, b.id), needs, None)
    }

    /// Elementwise difference of two same-shape tensors.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.zip(&nodes[b.id].value, |x, y| x - y)
        };
        let needs = self.needs(a.id) || self.needs(b.id);
        self.push(v, Op::Sub(a.id, b.id), needs, None)
    }

    /// Elementwise (Hadamard) product of two same-shape tensors.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.id].value.zip(&nodes[b.id].value, |x, y| x * y)
        };
        let needs = self.needs(a.id) || self.needs(b.id);
        self.push(v, Op::Mul(a.id, b.id), needs, None)
    }

    /// `(n x m) + (1 x m)`: broadcasts a row vector over every row (bias add).
    pub fn add_row(&self, a: Var, row: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let (m, r) = (&nodes[a.id].value, &nodes[row.id].value);
            assert_eq!(r.rows(), 1, "add_row rhs must be a row vector");
            assert_eq!(m.cols(), r.cols(), "add_row width mismatch");
            let mut out = m.clone();
            let cols = out.cols().max(1);
            let rr = r.row_slice(0);
            sarn_par::par_chunks_mut(out.data_mut(), cols, PAR_MIN_ELEMS, |_, chunk| {
                for row in chunk.chunks_mut(cols) {
                    for (o, &b) in row.iter_mut().zip(rr.iter()) {
                        *o += b;
                    }
                }
            });
            out
        };
        let needs = self.needs(a.id) || self.needs(row.id);
        self.push(v, Op::AddRow(a.id, row.id), needs, None)
    }

    /// `(n x m) * (n x 1)`: scales each row by a per-row factor.
    pub fn mul_col(&self, a: Var, col: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let (m, c) = (&nodes[a.id].value, &nodes[col.id].value);
            assert_eq!(c.cols(), 1, "mul_col rhs must be a column vector");
            assert_eq!(m.rows(), c.rows(), "mul_col height mismatch");
            let mut out = m.clone();
            let cols = out.cols().max(1);
            sarn_par::par_chunks_mut(out.data_mut(), cols, PAR_MIN_ELEMS, |offset, chunk| {
                let i0 = offset / cols;
                for (di, row) in chunk.chunks_mut(cols).enumerate() {
                    let f = c.at(i0 + di, 0);
                    for o in row {
                        *o *= f;
                    }
                }
            });
            out
        };
        let needs = self.needs(a.id) || self.needs(col.id);
        self.push(v, Op::MulCol(a.id, col.id), needs, None)
    }

    /// Multiplication by a constant.
    pub fn scale(&self, a: Var, c: f32) -> Var {
        let v = self.nodes.borrow()[a.id].value.map(|x| x * c);
        let needs = self.needs(a.id);
        self.push(v, Op::Scale(a.id, c), needs, None)
    }

    /// Addition of a constant to every element.
    pub fn add_scalar(&self, a: Var, c: f32) -> Var {
        let v = self.nodes.borrow()[a.id].value.map(|x| x + c);
        let needs = self.needs(a.id);
        self.push(v, Op::AddScalar(a.id), needs, None)
    }

    /// Elementwise negation.
    pub fn neg(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.id].value.map(|x| -x);
        let needs = self.needs(a.id);
        self.push(v, Op::Neg(a.id), needs, None)
    }

    /// Elementwise exponential.
    pub fn exp(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.id].value.map(f32::exp);
        let needs = self.needs(a.id);
        self.push(v, Op::Exp(a.id), needs, None)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.id].value.map(f32::ln);
        let needs = self.needs(a.id);
        self.push(v, Op::Ln(a.id), needs, None)
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.id].value.map(f32::abs);
        let needs = self.needs(a.id);
        self.push(v, Op::Abs(a.id), needs, None)
    }

    /// Elementwise square.
    pub fn sqr(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.id].value.map(|x| x * x);
        let needs = self.needs(a.id);
        self.push(v, Op::Sqr(a.id), needs, None)
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.id].value.map(|x| x.max(0.0));
        let needs = self.needs(a.id);
        self.push(v, Op::Relu(a.id), needs, None)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, a: Var, alpha: f32) -> Var {
        let v = self.nodes.borrow()[a.id]
            .value
            .map(|x| if x > 0.0 { x } else { alpha * x });
        let needs = self.needs(a.id);
        self.push(v, Op::LeakyRelu(a.id, alpha), needs, None)
    }

    /// Exponential linear unit: `x` for `x > 0`, `alpha (e^x - 1)` otherwise
    /// (the expression lives in [`crate::kernels::elu`], shared with the
    /// fused scatter so both produce bit-identical values).
    pub fn elu(&self, a: Var, alpha: f32) -> Var {
        let v = self.nodes.borrow()[a.id]
            .value
            .map(|x| crate::kernels::elu(x, alpha));
        let needs = self.needs(a.id);
        self.push(v, Op::Elu(a.id, alpha), needs, None)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.id]
            .value
            .map(|x| 1.0 / (1.0 + (-x).exp()));
        let needs = self.needs(a.id);
        self.push(v, Op::Sigmoid(a.id), needs, None)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.id].value.map(f32::tanh);
        let needs = self.needs(a.id);
        self.push(v, Op::Tanh(a.id), needs, None)
    }

    /// `1 - x`, elementwise (used by GRU gates).
    pub fn one_minus(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.id].value.map(|x| 1.0 - x);
        let needs = self.needs(a.id);
        self.push(v, Op::OneMinus(a.id), needs, None)
    }

    /// Row-wise L2 normalization: `y_i = x_i / max(||x_i||, eps)`.
    pub fn l2_normalize_rows(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let m = &nodes[a.id].value;
            let mut out = m.clone();
            let cols = out.cols().max(1);
            sarn_par::par_chunks_mut(out.data_mut(), cols, PAR_MIN_ELEMS, |_, chunk| {
                for row in chunk.chunks_mut(cols) {
                    let n = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-12);
                    for v in row.iter_mut() {
                        *v /= n;
                    }
                }
            });
            out
        };
        let needs = self.needs(a.id);
        self.push(v, Op::L2NormalizeRows(a.id), needs, None)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            softmax_rows_value(&nodes[a.id].value)
        };
        let needs = self.needs(a.id);
        self.push(v, Op::SoftmaxRows(a.id), needs, None)
    }

    /// Sum of every element, as a `1 x 1` tensor.
    pub fn sum_all(&self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes.borrow()[a.id].value.sum());
        let needs = self.needs(a.id);
        self.push(v, Op::SumAll(a.id), needs, None)
    }

    /// Mean of every element, as a `1 x 1` tensor.
    pub fn mean_all(&self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes.borrow()[a.id].value.mean());
        let needs = self.needs(a.id);
        self.push(v, Op::MeanAll(a.id), needs, None)
    }

    /// Per-row sums: `(n x m) -> (n x 1)`.
    pub fn sum_rows(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let m = &nodes[a.id].value;
            let mut out = vec![0.0f32; m.rows()];
            let gate = par_gate(m.len() >= PAR_MIN_ELEMS);
            sarn_par::par_chunks_mut(&mut out, 1, gate, |offset, chunk| {
                for (i, o) in chunk.iter_mut().enumerate() {
                    *o = m.row_slice(offset + i).iter().sum();
                }
            });
            Tensor::from_vec(m.rows(), 1, out)
        };
        let needs = self.needs(a.id);
        self.push(v, Op::SumRows(a.id), needs, None)
    }

    /// Transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.id].value.transpose();
        let needs = self.needs(a.id);
        self.push(v, Op::Transpose(a.id), needs, None)
    }

    /// Horizontal concatenation of tensors with equal row counts.
    pub fn concat_cols(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of zero vars");
        let v = {
            let nodes = self.nodes.borrow();
            let rows = nodes[parts[0].id].value.rows();
            let total: usize = parts.iter().map(|p| nodes[p.id].value.cols()).sum();
            let mut out = Tensor::zeros(rows, total);
            let mut off = 0;
            for p in parts {
                let t = &nodes[p.id].value;
                assert_eq!(t.rows(), rows, "concat_cols row mismatch");
                for i in 0..rows {
                    let dst = &mut out.row_slice_mut(i)[off..off + t.cols()];
                    dst.copy_from_slice(t.row_slice(i));
                }
                off += t.cols();
            }
            out
        };
        let needs = parts.iter().any(|p| self.needs(p.id));
        self.push(
            v,
            Op::ConcatCols(parts.iter().map(|p| p.id).collect()),
            needs,
            None,
        )
    }

    /// Vertical concatenation of tensors with equal column counts.
    pub fn concat_rows(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows of zero vars");
        let v = {
            let nodes = self.nodes.borrow();
            let tensors: Vec<&Tensor> = parts.iter().map(|p| &nodes[p.id].value).collect();
            Tensor::vstack(&tensors)
        };
        let needs = parts.iter().any(|p| self.needs(p.id));
        self.push(
            v,
            Op::ConcatRows(parts.iter().map(|p| p.id).collect()),
            needs,
            None,
        )
    }

    /// Gathers rows of `src` by index (embedding lookup); backward scatters
    /// gradients back with accumulation for repeated indices.
    pub fn gather_rows(&self, src: Var, idx: &[usize]) -> Var {
        let v = self.nodes.borrow()[src.id].value.gather_rows(idx);
        let needs = self.needs(src.id);
        self.push(
            v,
            Op::GatherRows {
                src: src.id,
                idx: Rc::new(idx.to_vec()),
            },
            needs,
            None,
        )
    }

    /// Contiguous row slice `[start, start + len)`.
    pub fn slice_rows(&self, src: Var, start: usize, len: usize) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let m = &nodes[src.id].value;
            assert!(start + len <= m.rows(), "slice_rows out of bounds");
            let mut out = Tensor::zeros(len, m.cols());
            for i in 0..len {
                out.row_slice_mut(i).copy_from_slice(m.row_slice(start + i));
            }
            out
        };
        let needs = self.needs(src.id);
        self.push(v, Op::SliceRows { src: src.id, start }, needs, None)
    }

    /// Softmax of an `e x 1` score column within groups given by `seg`
    /// (values in `0..nseg`). Empty groups are allowed.
    pub fn segment_softmax(&self, scores: Var, seg: Rc<Vec<usize>>, nseg: usize) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let s = &nodes[scores.id].value;
            assert_eq!(s.cols(), 1, "segment_softmax expects a column");
            assert_eq!(s.rows(), seg.len(), "segment id count mismatch");
            segment_softmax_value(s, &seg, nseg)
        };
        let needs = self.needs(scores.id);
        self.push(
            v,
            Op::SegmentSoftmax {
                scores: scores.id,
                seg,
                nseg,
            },
            needs,
            None,
        )
    }

    /// `out[seg[e]] += alpha[e] * values[e]` over all edges `e`; `alpha` is
    /// `e x 1`, `values` is `e x d`, and the output is `nseg x d`.
    pub fn segment_weighted_sum(
        &self,
        alpha: Var,
        values: Var,
        seg: Rc<Vec<usize>>,
        nseg: usize,
    ) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            segment_weighted_sum_value(
                &nodes[alpha.id].value,
                &nodes[values.id].value,
                &seg,
                nseg,
                None,
            )
        };
        let needs = self.needs(alpha.id) || self.needs(values.id);
        self.push(
            v,
            Op::SegmentWeightedSum {
                alpha: alpha.id,
                values: values.id,
                seg,
            },
            needs,
            None,
        )
    }

    /// [`Graph::segment_weighted_sum`] with an ELU (parameter `elu_alpha`)
    /// fused into the output pass: `y = elu(Σ_e alpha[e] * values[e])`.
    ///
    /// The scatter accumulation order and the ELU expression are exactly
    /// those of the unfused `segment_weighted_sum` + [`Graph::elu`] pair, so
    /// the fused op is bit-identical to the two-node form in both reduction
    /// orders — it only removes a tape node and a full extra pass over the
    /// `nseg x d` output.
    pub fn segment_weighted_sum_elu(
        &self,
        alpha: Var,
        values: Var,
        seg: Rc<Vec<usize>>,
        nseg: usize,
        elu_alpha: f32,
    ) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            segment_weighted_sum_value(
                &nodes[alpha.id].value,
                &nodes[values.id].value,
                &seg,
                nseg,
                Some(elu_alpha),
            )
        };
        let needs = self.needs(alpha.id) || self.needs(values.id);
        self.push(
            v,
            Op::SegmentWeightedSumElu {
                alpha: alpha.id,
                values: values.id,
                seg,
                elu_alpha,
            },
            needs,
            None,
        )
    }

    /// Mean cross-entropy of logits against integer class labels.
    pub fn cross_entropy(&self, logits: Var, labels: &[usize]) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let l = &nodes[logits.id].value;
            assert_eq!(l.rows(), labels.len(), "label count mismatch");
            let probs = softmax_rows_value(l);
            let mut loss = 0.0;
            for (i, &y) in labels.iter().enumerate() {
                loss -= (probs.at(i, y) + 1e-12).ln();
            }
            Tensor::scalar(loss / labels.len().max(1) as f32)
        };
        let needs = self.needs(logits.id);
        self.push(
            v,
            Op::CrossEntropy {
                logits: logits.id,
                labels: Rc::new(labels.to_vec()),
            },
            needs,
            None,
        )
    }

    /// Mean squared error against a constant target of the same shape.
    pub fn mse(&self, pred: Var, target: &Tensor) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let p = &nodes[pred.id].value;
            assert_eq!(p.shape(), target.shape(), "mse shape mismatch");
            let mut acc = 0.0;
            for (a, b) in p.data().iter().zip(target.data().iter()) {
                let d = a - b;
                acc += d * d;
            }
            Tensor::scalar(acc / p.len().max(1) as f32)
        };
        let needs = self.needs(pred.id);
        self.push(
            v,
            Op::MseConst {
                pred: pred.id,
                target: Rc::new(target.clone()),
            },
            needs,
            None,
        )
    }

    /// Mean InfoNCE loss over the rows of `z`.
    ///
    /// `cands[i]` holds the candidates for anchor `i`: row 0 is the positive
    /// sample, the remaining rows are negatives. Similarity is the dot
    /// product scaled by `1/tau`. Candidates are treated as constants (the
    /// MoCo momentum branch), so gradients flow only into `z`.
    pub fn info_nce(&self, z: Var, cands: Vec<Tensor>, tau: f32) -> Var {
        assert!(tau > 0.0, "temperature must be positive");
        let v = {
            let nodes = self.nodes.borrow();
            let zt = &nodes[z.id].value;
            assert_eq!(zt.rows(), cands.len(), "candidate count mismatch");
            // Per-anchor terms are independent; computing them in parallel
            // and reducing serially in anchor order reproduces the serial
            // `loss -= term` accumulation bit-for-bit.
            let gate = par_gate(cands.len() >= PAR_MIN_ANCHORS);
            let parts = sarn_par::par_ranges(cands.len(), gate, |range| {
                range
                    .map(|i| {
                        let c = &cands[i];
                        assert_eq!(c.cols(), zt.cols(), "candidate width mismatch");
                        assert!(c.rows() >= 1, "anchor {i} has no candidates");
                        let zi = zt.row_slice(i);
                        let mut logits: Vec<f32> = (0..c.rows())
                            .map(|r| Tensor::dot(zi, c.row_slice(r)) / tau)
                            .collect();
                        let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                        let mut denom = 0.0;
                        for l in &mut logits {
                            *l = (*l - m).exp();
                            denom += *l;
                        }
                        -(logits[0] / denom + 1e-12).ln()
                    })
                    .collect::<Vec<f32>>()
            });
            let mut loss = 0.0;
            for term in parts.iter().flatten() {
                loss += term;
            }
            Tensor::scalar(loss / cands.len().max(1) as f32)
        };
        let needs = self.needs(z.id);
        self.push(
            v,
            Op::InfoNce {
                z: z.id,
                cands: Rc::new(cands),
                tau,
            },
            needs,
            None,
        )
    }

    // ---- backward --------------------------------------------------------

    /// Runs backpropagation from `root` (which must be `1 x 1`).
    pub fn backward(&self, root: Var) {
        let mut nodes = self.nodes.borrow_mut();
        assert_eq!(
            nodes[root.id].value.shape(),
            (1, 1),
            "backward root must be scalar"
        );
        nodes[root.id].grad = Some(Tensor::scalar(1.0));
        for id in (0..=root.id).rev() {
            if !nodes[id].needs_grad {
                continue;
            }
            let Some(g) = nodes[id].grad.take() else {
                continue;
            };
            // Temporarily move the op out to appease the borrow checker; the
            // per-op code reads values of other nodes and accumulates into
            // their gradients.
            backward_step(&mut nodes, id, &g);
            nodes[id].grad = Some(g);
        }
    }

    /// Adds every parameter gradient on the tape into `store`.
    pub fn accumulate_grads(&self, store: &mut ParamStore) {
        let nodes = self.nodes.borrow();
        for node in nodes.iter() {
            if let (Some(pid), Some(grad)) = (node.param, node.grad.as_ref()) {
                store.grad_mut(pid).axpy(1.0, grad);
            }
        }
    }
}

/// Backward of the segment scatter, shared by the plain and the ELU-fused
/// op (the latter pre-multiplies `g` by the ELU derivative). Both gradients
/// are elementwise over edges (no accumulation).
fn segment_weighted_sum_backward(
    nodes: &mut [Node],
    g: &Tensor,
    alpha: usize,
    values: usize,
    seg: &[usize],
) {
    let a = nodes[alpha].value.clone();
    let v = nodes[values].value.clone();
    let gate = par_gate(seg.len() >= PAR_MIN_EDGES);
    let mut da = vec![0.0f32; a.rows()];
    sarn_par::par_chunks_mut(&mut da, 1, gate, |offset, chunk| {
        for (i, o) in chunk.iter_mut().enumerate() {
            let e = offset + i;
            *o = Tensor::dot(g.row_slice(seg[e]), v.row_slice(e));
        }
    });
    let cols = v.cols().max(1);
    let mut dv = vec![0.0f32; v.len()];
    sarn_par::par_chunks_mut(&mut dv, cols, gate, |offset, chunk| {
        let e0 = offset / cols;
        for (de, orow) in chunk.chunks_mut(cols).enumerate() {
            let e = e0 + de;
            let w = a.at(e, 0);
            for (o, &x) in orow.iter_mut().zip(g.row_slice(seg[e])) {
                *o = w * x;
            }
        }
    });
    accumulate(nodes, alpha, Tensor::from_vec(a.rows(), 1, da));
    accumulate(nodes, values, Tensor::from_vec(v.rows(), v.cols(), dv));
}

fn accumulate(nodes: &mut [Node], id: usize, delta: Tensor) {
    if !nodes[id].needs_grad {
        return;
    }
    match nodes[id].grad.as_mut() {
        Some(g) => g.axpy(1.0, &delta),
        None => nodes[id].grad = Some(delta),
    }
}

/// Row-wise softmax on a raw tensor (shared by the op and the CE loss).
pub(crate) fn softmax_rows_value(m: &Tensor) -> Tensor {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let row = out.row_slice_mut(i);
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for v in row.iter_mut() {
            *v = (*v - mx).exp();
            denom += *v;
        }
        for v in row.iter_mut() {
            *v /= denom;
        }
    }
    out
}

/// Forward pass shared by the plain and the ELU-fused segment scatter:
/// `out[seg[e]] += alpha[e] * values[e]`, then optionally `elu` applied to
/// each output chunk while it is still cache-hot. The scatter partitions
/// destination rows; each owner scans the whole edge list in ascending
/// order, so accumulation matches the serial path bit-for-bit, and the ELU
/// is elementwise on identical sums — fusion never changes a bit.
fn segment_weighted_sum_value(
    a: &Tensor,
    vals: &Tensor,
    seg: &[usize],
    nseg: usize,
    elu_alpha: Option<f32>,
) -> Tensor {
    assert_eq!(a.cols(), 1, "segment_weighted_sum alpha must be a column");
    assert_eq!(a.rows(), vals.rows(), "alpha/value count mismatch");
    assert_eq!(a.rows(), seg.len(), "segment id count mismatch");
    let cols = vals.cols().max(1);
    let mut out = vec![0.0f32; nseg * vals.cols()];
    let gate = par_gate(seg.len() >= PAR_MIN_EDGES);
    sarn_par::par_chunks_mut(&mut out, cols, gate, |offset, chunk| {
        let (s0, s1) = (offset / cols, (offset + chunk.len()) / cols);
        for (e, &s) in seg.iter().enumerate() {
            if s < s0 || s >= s1 {
                continue;
            }
            let w = a.at(e, 0);
            let dst = &mut chunk[(s - s0) * cols..(s - s0 + 1) * cols];
            for (o, &x) in dst.iter_mut().zip(vals.row_slice(e).iter()) {
                *o += w * x;
            }
        }
        if let Some(al) = elu_alpha {
            for o in chunk.iter_mut() {
                *o = crate::kernels::elu(*o, al);
            }
        }
    });
    Tensor::from_vec(nseg, vals.cols(), out)
}

fn segment_softmax_value(scores: &Tensor, seg: &[usize], nseg: usize) -> Tensor {
    // Per-segment max and exp-sum, partitioned by segment id: each range
    // owner scans the whole edge list in ascending order, so the per-segment
    // accumulation order matches the serial pass exactly.
    let gate = par_gate(seg.len() >= PAR_MIN_EDGES);
    let parts = sarn_par::par_ranges(nseg, gate, |r| {
        let mut maxes = vec![f32::NEG_INFINITY; r.len()];
        for (e, &s) in seg.iter().enumerate() {
            if r.contains(&s) {
                maxes[s - r.start] = maxes[s - r.start].max(scores.at(e, 0));
            }
        }
        let mut sums = vec![0.0f32; r.len()];
        for (e, &s) in seg.iter().enumerate() {
            if r.contains(&s) {
                sums[s - r.start] += (scores.at(e, 0) - maxes[s - r.start]).exp();
            }
        }
        (maxes, sums)
    });
    let mut maxes = Vec::with_capacity(nseg);
    let mut sums = Vec::with_capacity(nseg);
    for (m, s) in parts {
        maxes.extend(m);
        sums.extend(s);
    }
    // The normalized weights are then elementwise over edges.
    let mut out = vec![0.0f32; seg.len()];
    sarn_par::par_chunks_mut(&mut out, 1, gate, |offset, chunk| {
        for (i, o) in chunk.iter_mut().enumerate() {
            let e = offset + i;
            let s = seg[e];
            *o = (scores.at(e, 0) - maxes[s]).exp() / sums[s];
        }
    });
    Tensor::from_vec(seg.len(), 1, out)
}

#[allow(clippy::too_many_lines)]
fn backward_step(nodes: &mut [Node], id: usize, g: &Tensor) {
    // Move the op out so we can mutably borrow the node list while matching.
    let op = std::mem::replace(&mut nodes[id].op, Op::Leaf);
    match &op {
        Op::Leaf => {}
        Op::MatMul(a, b) => {
            let da = g.matmul_t(&nodes[*b].value);
            let db = nodes[*a].value.t_matmul(g);
            accumulate(nodes, *a, da);
            accumulate(nodes, *b, db);
        }
        Op::Add(a, b) => {
            accumulate(nodes, *a, g.clone());
            accumulate(nodes, *b, g.clone());
        }
        Op::Sub(a, b) => {
            accumulate(nodes, *a, g.clone());
            accumulate(nodes, *b, g.map(|x| -x));
        }
        Op::Mul(a, b) => {
            let da = g.zip(&nodes[*b].value, |x, y| x * y);
            let db = g.zip(&nodes[*a].value, |x, y| x * y);
            accumulate(nodes, *a, da);
            accumulate(nodes, *b, db);
        }
        Op::AddRow(a, row) => {
            accumulate(nodes, *a, g.clone());
            // Column sums, partitioned by column: each owner walks the rows
            // in ascending order, matching the serial accumulation.
            let mut dr = vec![0.0f32; g.cols()];
            let gate = par_gate(g.len() >= PAR_MIN_ELEMS);
            sarn_par::par_chunks_mut(&mut dr, 1, gate, |offset, chunk| {
                for i in 0..g.rows() {
                    let grow = &g.row_slice(i)[offset..offset + chunk.len()];
                    for (o, &x) in chunk.iter_mut().zip(grow) {
                        *o += x;
                    }
                }
            });
            accumulate(nodes, *row, Tensor::from_vec(1, g.cols(), dr));
        }
        Op::MulCol(a, col) => {
            let c = nodes[*col].value.clone();
            let av = nodes[*a].value.clone();
            let mut da = g.clone();
            let cols = da.cols().max(1);
            sarn_par::par_chunks_mut(da.data_mut(), cols, PAR_MIN_ELEMS, |offset, chunk| {
                let i0 = offset / cols;
                for (di, row) in chunk.chunks_mut(cols).enumerate() {
                    let f = c.at(i0 + di, 0);
                    for v in row {
                        *v *= f;
                    }
                }
            });
            let mut dc = vec![0.0f32; c.rows()];
            let gate = par_gate(g.len() >= PAR_MIN_ELEMS);
            sarn_par::par_chunks_mut(&mut dc, 1, gate, |offset, chunk| {
                for (i, o) in chunk.iter_mut().enumerate() {
                    *o = Tensor::dot(g.row_slice(offset + i), av.row_slice(offset + i));
                }
            });
            accumulate(nodes, *a, da);
            accumulate(nodes, *col, Tensor::from_vec(c.rows(), 1, dc));
        }
        Op::Scale(a, c) => accumulate(nodes, *a, g.map(|x| x * c)),
        Op::AddScalar(a) => accumulate(nodes, *a, g.clone()),
        Op::Neg(a) => accumulate(nodes, *a, g.map(|x| -x)),
        Op::Exp(a) => {
            let d = g.zip(&nodes[id].value, |x, y| x * y);
            accumulate(nodes, *a, d);
        }
        Op::Ln(a) => {
            let d = g.zip(&nodes[*a].value, |x, y| x / y);
            accumulate(nodes, *a, d);
        }
        Op::Abs(a) => {
            let d = g.zip(&nodes[*a].value, |x, y| {
                if y > 0.0 {
                    x
                } else if y < 0.0 {
                    -x
                } else {
                    0.0
                }
            });
            accumulate(nodes, *a, d);
        }
        Op::Sqr(a) => {
            let d = g.zip(&nodes[*a].value, |x, y| 2.0 * x * y);
            accumulate(nodes, *a, d);
        }
        Op::Relu(a) => {
            let d = g.zip(&nodes[*a].value, |x, y| if y > 0.0 { x } else { 0.0 });
            accumulate(nodes, *a, d);
        }
        Op::LeakyRelu(a, alpha) => {
            let al = *alpha;
            let d = g.zip(&nodes[*a].value, |x, y| if y > 0.0 { x } else { al * x });
            accumulate(nodes, *a, d);
        }
        Op::Elu(a, alpha) => {
            let al = *alpha;
            // d/dx elu = 1 for x > 0, alpha * e^x = value + alpha otherwise.
            let d = g.zip(
                &nodes[id].value,
                |x, out| {
                    if out > 0.0 {
                        x
                    } else {
                        x * (out + al)
                    }
                },
            );
            accumulate(nodes, *a, d);
        }
        Op::Sigmoid(a) => {
            let d = g.zip(&nodes[id].value, |x, s| x * s * (1.0 - s));
            accumulate(nodes, *a, d);
        }
        Op::Tanh(a) => {
            let d = g.zip(&nodes[id].value, |x, t| x * (1.0 - t * t));
            accumulate(nodes, *a, d);
        }
        Op::OneMinus(a) => accumulate(nodes, *a, g.map(|x| -x)),
        Op::L2NormalizeRows(a) => {
            // y = x / n with n = ||x||: dx = (g - y (g . y)) / n
            let x = nodes[*a].value.clone();
            let y = nodes[id].value.clone();
            let cols = x.cols().max(1);
            let mut d = vec![0.0f32; x.len()];
            sarn_par::par_chunks_mut(&mut d, cols, PAR_MIN_ELEMS, |offset, chunk| {
                let i0 = offset / cols;
                for (di, drow) in chunk.chunks_mut(cols).enumerate() {
                    let i = i0 + di;
                    let n = x
                        .row_slice(i)
                        .iter()
                        .map(|v| v * v)
                        .sum::<f32>()
                        .sqrt()
                        .max(1e-12);
                    let gy = Tensor::dot(g.row_slice(i), y.row_slice(i));
                    for (c, o) in drow.iter_mut().enumerate() {
                        *o = (g.at(i, c) - y.at(i, c) * gy) / n;
                    }
                }
            });
            accumulate(nodes, *a, Tensor::from_vec(x.rows(), x.cols(), d));
        }
        Op::SoftmaxRows(a) => {
            let s = nodes[id].value.clone();
            let cols = s.cols().max(1);
            let mut d = vec![0.0f32; s.len()];
            sarn_par::par_chunks_mut(&mut d, cols, PAR_MIN_ELEMS, |offset, chunk| {
                let i0 = offset / cols;
                for (di, drow) in chunk.chunks_mut(cols).enumerate() {
                    let i = i0 + di;
                    let srow = s.row_slice(i);
                    let grow = g.row_slice(i);
                    let dot = Tensor::dot(srow, grow);
                    for (c, o) in drow.iter_mut().enumerate() {
                        *o = srow[c] * (grow[c] - dot);
                    }
                }
            });
            accumulate(nodes, *a, Tensor::from_vec(s.rows(), s.cols(), d));
        }
        Op::SumAll(a) => {
            let (r, c) = nodes[*a].value.shape();
            accumulate(nodes, *a, Tensor::full(r, c, g.item()));
        }
        Op::MeanAll(a) => {
            let (r, c) = nodes[*a].value.shape();
            let n = (r * c).max(1) as f32;
            accumulate(nodes, *a, Tensor::full(r, c, g.item() / n));
        }
        Op::SumRows(a) => {
            let (r, c) = nodes[*a].value.shape();
            let cols = c.max(1);
            let mut d = vec![0.0f32; r * c];
            sarn_par::par_chunks_mut(&mut d, cols, PAR_MIN_ELEMS, |offset, chunk| {
                let i0 = offset / cols;
                for (di, row) in chunk.chunks_mut(cols).enumerate() {
                    row.fill(g.at(i0 + di, 0));
                }
            });
            accumulate(nodes, *a, Tensor::from_vec(r, c, d));
        }
        Op::Transpose(a) => accumulate(nodes, *a, g.transpose()),
        Op::ConcatCols(parts) => {
            let mut off = 0;
            for &p in parts {
                let (r, c) = nodes[p].value.shape();
                let mut d = Tensor::zeros(r, c);
                for i in 0..r {
                    d.row_slice_mut(i)
                        .copy_from_slice(&g.row_slice(i)[off..off + c]);
                }
                off += c;
                accumulate(nodes, p, d);
            }
        }
        Op::ConcatRows(parts) => {
            let mut off = 0;
            for &p in parts {
                let (r, c) = nodes[p].value.shape();
                let mut d = Tensor::zeros(r, c);
                for i in 0..r {
                    d.row_slice_mut(i).copy_from_slice(g.row_slice(off + i));
                }
                off += r;
                accumulate(nodes, p, d);
            }
        }
        Op::GatherRows { src, idx } => {
            // Scatter-add partitioned by destination row: each owner scans
            // the full index list in ascending order, so repeated indices
            // accumulate in the serial order.
            let (r, c) = nodes[*src].value.shape();
            let cols = c.max(1);
            let mut d = vec![0.0f32; r * c];
            let idx: &[usize] = idx;
            let gate = par_gate(idx.len() * c >= PAR_MIN_ELEMS);
            sarn_par::par_chunks_mut(&mut d, cols, gate, |offset, chunk| {
                let (r0, r1) = (offset / cols, (offset + chunk.len()) / cols);
                for (e, &i) in idx.iter().enumerate() {
                    if i < r0 || i >= r1 {
                        continue;
                    }
                    let dst = &mut chunk[(i - r0) * cols..(i - r0 + 1) * cols];
                    for (o, &x) in dst.iter_mut().zip(g.row_slice(e)) {
                        *o += x;
                    }
                }
            });
            accumulate(nodes, *src, Tensor::from_vec(r, c, d));
        }
        Op::SliceRows { src, start } => {
            let (r, c) = nodes[*src].value.shape();
            let mut d = Tensor::zeros(r, c);
            for i in 0..g.rows() {
                d.row_slice_mut(start + i).copy_from_slice(g.row_slice(i));
            }
            accumulate(nodes, *src, d);
        }
        Op::SegmentSoftmax { scores, seg, nseg } => {
            let alpha = nodes[id].value.clone();
            // Per-segment dot, partitioned by segment id (serial order per
            // segment), then an elementwise pass over edges.
            let seg: &[usize] = seg;
            let gate = par_gate(seg.len() >= PAR_MIN_EDGES);
            let parts = sarn_par::par_ranges(*nseg, gate, |r| {
                let mut dot = vec![0.0f32; r.len()];
                for (e, &s) in seg.iter().enumerate() {
                    if r.contains(&s) {
                        dot[s - r.start] += alpha.at(e, 0) * g.at(e, 0);
                    }
                }
                dot
            });
            let seg_dot: Vec<f32> = parts.into_iter().flatten().collect();
            let mut d = vec![0.0f32; alpha.rows()];
            sarn_par::par_chunks_mut(&mut d, 1, gate, |offset, chunk| {
                for (i, o) in chunk.iter_mut().enumerate() {
                    let e = offset + i;
                    *o = alpha.at(e, 0) * (g.at(e, 0) - seg_dot[seg[e]]);
                }
            });
            accumulate(nodes, *scores, Tensor::from_vec(alpha.rows(), 1, d));
        }
        Op::SegmentWeightedSum { alpha, values, seg } => {
            segment_weighted_sum_backward(nodes, g, *alpha, *values, seg);
        }
        Op::SegmentWeightedSumElu {
            alpha,
            values,
            seg,
            elu_alpha,
        } => {
            // Chain through the fused ELU first: ds = g ⊙ elu'(y), the same
            // value-based derivative as Op::Elu (y is the fused output), then
            // the plain scatter backward sees ds in place of g.
            let al = *elu_alpha;
            let ds = g.zip(
                &nodes[id].value,
                |x, out| {
                    if out > 0.0 {
                        x
                    } else {
                        x * (out + al)
                    }
                },
            );
            segment_weighted_sum_backward(nodes, &ds, *alpha, *values, seg);
        }
        Op::CrossEntropy { logits, labels } => {
            let mut d = softmax_rows_value(&nodes[*logits].value);
            let n = labels.len().max(1) as f32;
            let scale = g.item() / n;
            let labels: &[usize] = labels;
            let cols = d.cols().max(1);
            sarn_par::par_chunks_mut(d.data_mut(), cols, PAR_MIN_ELEMS, |offset, chunk| {
                let i0 = offset / cols;
                for (di, row) in chunk.chunks_mut(cols).enumerate() {
                    row[labels[i0 + di]] -= 1.0;
                    for v in row.iter_mut() {
                        *v *= scale;
                    }
                }
            });
            accumulate(nodes, *logits, d);
        }
        Op::MseConst { pred, target } => {
            let p = &nodes[*pred].value;
            let n = p.len().max(1) as f32;
            let scale = 2.0 * g.item() / n;
            let d = p.zip(target, |a, b| scale * (a - b));
            accumulate(nodes, *pred, d);
        }
        Op::InfoNce { z, cands, tau } => {
            let zt = nodes[*z].value.clone();
            let b = cands.len().max(1) as f32;
            let scale = g.item() / (b * tau);
            let cands: &[Tensor] = cands;
            // Each anchor owns exactly one gradient row.
            let cols = zt.cols().max(1);
            let mut d = vec![0.0f32; zt.len()];
            let gate = par_gate(cands.len() >= PAR_MIN_ANCHORS);
            sarn_par::par_chunks_mut(&mut d, cols, gate, |offset, chunk| {
                let i0 = offset / cols;
                for (di, drow) in chunk.chunks_mut(cols).enumerate() {
                    let i = i0 + di;
                    let c = &cands[i];
                    let zi = zt.row_slice(i);
                    let mut logits: Vec<f32> = (0..c.rows())
                        .map(|r| Tensor::dot(zi, c.row_slice(r)) / tau)
                        .collect();
                    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut denom = 0.0;
                    for l in &mut logits {
                        *l = (*l - m).exp();
                        denom += *l;
                    }
                    for (r, &e) in logits.iter().enumerate() {
                        let q = e / denom;
                        let coef = if r == 0 { q - 1.0 } else { q };
                        for (o, &cv) in drow.iter_mut().zip(c.row_slice(r)) {
                            *o += scale * coef * cv;
                        }
                    }
                }
            });
            accumulate(nodes, *z, Tensor::from_vec(zt.rows(), zt.cols(), d));
        }
    }
    nodes[id].op = op;
}
