//! Numerical gradient checking by central differences.
//!
//! Used by the test suite to validate every autograd op against
//! finite-difference derivatives.

use crate::autograd::{Graph, Var};
use crate::tensor::Tensor;

/// Compares the analytic gradient of `build` (a scalar-valued function of a
/// single leaf) against a central-difference estimate.
///
/// Returns the maximum absolute deviation, or an error if the analytic
/// gradient was not produced.
pub fn max_grad_error(
    x0: &Tensor,
    build: impl Fn(&Graph, Var) -> Var,
    eps: f32,
) -> Result<f32, String> {
    // Analytic gradient.
    let g = Graph::new();
    let x = g.leaf_grad(x0.clone());
    let loss = build(&g, x);
    if g.shape(loss) != (1, 1) {
        return Err("build must produce a scalar".into());
    }
    g.backward(loss);
    let analytic = g.grad(x).ok_or("no gradient reached the leaf")?;

    // Central differences.
    let mut max_err = 0.0f32;
    for k in 0..x0.len() {
        let eval = |delta: f32| -> f32 {
            let mut xp = x0.clone();
            xp.data_mut()[k] += delta;
            let g = Graph::new();
            let x = g.input(xp);
            let loss = build(&g, x);
            g.value(loss).item()
        };
        let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
        let err = (numeric - analytic.data()[k]).abs();
        if err > max_err {
            max_err = err;
        }
    }
    Ok(max_err)
}

/// Asserts the analytic gradient matches finite differences within `tol`.
///
/// # Panics
/// Panics when the deviation exceeds `tol`.
pub fn assert_grad_close(x0: &Tensor, build: impl Fn(&Graph, Var) -> Var, eps: f32, tol: f32) {
    let err = max_grad_error(x0, build, eps).expect("gradient check setup failed");
    assert!(err < tol, "gradient mismatch: max error {err} >= tol {tol}");
}
