//! Weight initialization helpers.

use rand::Rng;

use crate::tensor::Tensor;

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rng, rows, cols, -a, a)
}

/// Uniform initialization in `[lo, hi)`.
pub fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, lo: f32, hi: f32) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Normal initialization with the given standard deviation (Box–Muller).
pub fn normal(rng: &mut impl Rng, rows: usize, cols: usize, std: f32) -> Tensor {
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_fan_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(&mut rng, 20, 30);
        let a = (6.0f32 / 50.0).sqrt();
        assert!(t.data().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn normal_has_roughly_requested_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(&mut rng, 100, 100, 2.0);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / (t.len() as f32 - 1.0);
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(&mut rng, 10, 10, -0.5, 0.25);
        assert!(t.data().iter().all(|&v| (-0.5..0.25).contains(&v)));
    }
}
