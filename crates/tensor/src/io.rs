//! Persistence for tensors and parameter stores.
//!
//! A deliberately simple little-endian binary format (magic + shape +
//! payload) so trained embeddings and models survive process restarts
//! without any serialization dependency. The streaming primitives
//! ([`write_tensor_to`], [`read_tensor_from`], [`write_str_to`],
//! [`read_str_from`], and the raw-store variants on [`ParamStore`]) are
//! public so higher layers (e.g. the training checkpoint subsystem) can
//! embed tensors and stores inside their own framed formats.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::params::ParamStore;
use crate::tensor::Tensor;

const TENSOR_MAGIC: &[u8; 4] = b"SRT1";
const STORE_MAGIC: &[u8; 4] = b"SRS1";

/// Writes a `u32` in little-endian order.
pub fn write_u32_to(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `u32`.
pub fn read_u32_from(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes a `u64` in little-endian order.
pub fn write_u64_to(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `u64`.
pub fn read_u64_from(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a tensor's shape and row-major payload (no magic).
pub fn write_tensor_to(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    write_u32_to(w, t.rows() as u32)?;
    write_u32_to(w, t.cols() as u32)?;
    let mut bytes = Vec::with_capacity(t.len() * 4);
    for &v in t.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&bytes)
}

/// Reads a tensor written by [`write_tensor_to`].
pub fn read_tensor_from(r: &mut impl Read) -> io::Result<Tensor> {
    let rows = read_u32_from(r)? as usize;
    let cols = read_u32_from(r)? as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "tensor shape overflow"))?;
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Tensor::from_vec(rows, cols, data))
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_str_to(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u32_to(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

/// Reads a string written by [`write_str_to`].
pub fn read_str_from(r: &mut impl Read) -> io::Result<String> {
    let len = read_u32_from(r)? as usize;
    if len > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "string too long",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

impl Tensor {
    /// Writes this tensor to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(TENSOR_MAGIC)?;
        write_tensor_to(&mut w, self)?;
        w.flush()
    }

    /// Reads a tensor written by [`Tensor::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Tensor> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != TENSOR_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a tensor file",
            ));
        }
        read_tensor_from(&mut r)
    }
}

impl ParamStore {
    /// Writes all parameter names and values (gradients are not persisted)
    /// into a raw stream, without the file magic.
    pub fn write_values_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_u32_to(w, self.len() as u32)?;
        for id in self.ids() {
            write_str_to(w, self.name(id))?;
            write_tensor_to(w, self.value(id))?;
        }
        Ok(())
    }

    /// Reads a store written by [`ParamStore::write_values_to`].
    pub fn read_values_from(r: &mut impl Read) -> io::Result<ParamStore> {
        let count = read_u32_from(r)? as usize;
        let mut store = ParamStore::new();
        for _ in 0..count {
            let name = read_str_from(r)?;
            let value = read_tensor_from(r)?;
            store.add(name, value);
        }
        Ok(store)
    }

    /// Writes all parameter names and values (gradients are not persisted).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(STORE_MAGIC)?;
        self.write_values_to(&mut w)?;
        w.flush()
    }

    /// Reads a store written by [`ParamStore::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<ParamStore> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != STORE_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a param-store file",
            ));
        }
        ParamStore::read_values_from(&mut r)
    }

    /// Checks that `other` has this store's exact layout (parameter names
    /// and shapes, in order), returning a descriptive error otherwise.
    pub fn validate_layout_of(&self, other: &ParamStore) -> io::Result<()> {
        if other.len() != self.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("layout mismatch: {} vs {} params", other.len(), self.len()),
            ));
        }
        for (mine, theirs) in self.ids().zip(other.ids()) {
            if self.name(mine) != other.name(theirs) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "param name mismatch: expected {}, found {}",
                        self.name(mine),
                        other.name(theirs)
                    ),
                ));
            }
            if self.value(mine).shape() != other.value(theirs).shape() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "param {} shape mismatch: expected {:?}, found {:?}",
                        self.name(mine),
                        self.value(mine).shape(),
                        other.value(theirs).shape()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Copies values from another store after validating the full layout,
    /// so a mismatch anywhere leaves this store untouched.
    pub fn copy_values_validated(&mut self, other: &ParamStore) -> io::Result<()> {
        self.validate_layout_of(other)?;
        for (mine, theirs) in self.ids().zip(other.ids()).collect::<Vec<_>>() {
            *self.value_mut(mine) = other.value(theirs).clone();
        }
        Ok(())
    }

    /// Loads values from a file into this store; the layout (names and
    /// shapes, in order) must match. Validation runs against the complete
    /// file before any value is written, so an error never leaves the store
    /// partially loaded.
    pub fn load_values_from(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let other = ParamStore::load(path)?;
        self.copy_values_validated(&other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sarn_io_{name}_{}", std::process::id()))
    }

    #[test]
    fn tensor_roundtrips() {
        let t = Tensor::from_vec(2, 3, vec![1.0, -2.5, 3.25, 0.0, f32::MIN_POSITIVE, 1e9]);
        let p = tmp("tensor");
        t.save(&p).unwrap();
        let back = Tensor::load(&p).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn store_roundtrips_names_and_values() {
        let mut s = ParamStore::new();
        let a = s.add("layer.w", Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = s.add("layer.b", Tensor::row(&[0.5, -0.5]));
        let p = tmp("store");
        s.save(&p).unwrap();
        let loaded = ParamStore::load(&p).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.value(a), s.value(a));
        assert_eq!(loaded.value(b), s.value(b));
        assert_eq!(loaded.name(a), "layer.w");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn load_values_from_rejects_layout_mismatch() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::zeros(1, 2));
        let p = tmp("mismatch");
        s.save(&p).unwrap();
        let mut other = ParamStore::new();
        other.add("w", Tensor::zeros(2, 2)); // different shape
        assert!(other.load_values_from(&p).is_err());
        let mut ok = ParamStore::new();
        ok.add("w", Tensor::ones(1, 2));
        ok.load_values_from(&p).unwrap();
        assert_eq!(ok.value(ok.ids().next().unwrap()).data(), &[0.0, 0.0]);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn load_values_from_is_transactional_on_late_mismatch() {
        // The first param matches, the second does not: after the failed
        // load, *neither* value may have changed.
        let mut on_disk = ParamStore::new();
        on_disk.add("a", Tensor::from_vec(1, 2, vec![9.0, 9.0]));
        on_disk.add("b", Tensor::zeros(3, 3));
        let p = tmp("transactional");
        on_disk.save(&p).unwrap();
        let mut target = ParamStore::new();
        let a = target.add("a", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = target.add("b", Tensor::ones(2, 3)); // shape differs
        assert!(target.load_values_from(&p).is_err());
        assert_eq!(target.value(a).data(), &[1.0, 2.0]);
        assert_eq!(target.value(b).data(), &[1.0; 6]);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn raw_store_stream_roundtrips() {
        let mut s = ParamStore::new();
        s.add("x", Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let mut buf = Vec::new();
        s.write_values_to(&mut buf).unwrap();
        let back = ParamStore::read_values_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(
            back.value(back.ids().next().unwrap()).data(),
            &[1., 2., 3., 4.]
        );
    }

    #[test]
    fn loading_garbage_fails_cleanly() {
        let p = tmp("garbage");
        std::fs::write(&p, b"not a tensor at all").unwrap();
        assert!(Tensor::load(&p).is_err());
        assert!(ParamStore::load(&p).is_err());
        std::fs::remove_file(p).ok();
    }
}
