//! Persistence for tensors and parameter stores.
//!
//! A deliberately simple little-endian binary format (magic + shape +
//! payload) so trained embeddings and models survive process restarts
//! without any serialization dependency.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::params::ParamStore;
use crate::tensor::Tensor;

const TENSOR_MAGIC: &[u8; 4] = b"SRT1";
const STORE_MAGIC: &[u8; 4] = b"SRS1";

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    write_u32(w, t.rows() as u32)?;
    write_u32(w, t.cols() as u32)?;
    for &v in t.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_tensor(r: &mut impl Read) -> io::Result<Tensor> {
    let rows = read_u32(r)? as usize;
    let cols = read_u32(r)? as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "tensor shape overflow"))?;
    let mut data = Vec::with_capacity(n);
    let mut buf = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut buf)?;
        data.push(f32::from_le_bytes(buf));
    }
    Ok(Tensor::from_vec(rows, cols, data))
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "string too long",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

impl Tensor {
    /// Writes this tensor to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(TENSOR_MAGIC)?;
        write_tensor(&mut w, self)?;
        w.flush()
    }

    /// Reads a tensor written by [`Tensor::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Tensor> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != TENSOR_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a tensor file",
            ));
        }
        read_tensor(&mut r)
    }
}

impl ParamStore {
    /// Writes all parameter names and values (gradients are not persisted).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(STORE_MAGIC)?;
        write_u32(&mut w, self.len() as u32)?;
        for id in self.ids() {
            write_str(&mut w, self.name(id))?;
            write_tensor(&mut w, self.value(id))?;
        }
        w.flush()
    }

    /// Reads a store written by [`ParamStore::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<ParamStore> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != STORE_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a param-store file",
            ));
        }
        let count = read_u32(&mut r)? as usize;
        let mut store = ParamStore::new();
        for _ in 0..count {
            let name = read_str(&mut r)?;
            let value = read_tensor(&mut r)?;
            store.add(name, value);
        }
        Ok(store)
    }

    /// Loads values from a file into this store; the layout (names and
    /// shapes, in order) must match.
    pub fn load_values_from(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let other = ParamStore::load(path)?;
        if other.len() != self.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("layout mismatch: {} vs {} params", other.len(), self.len()),
            ));
        }
        for (mine, theirs) in self.ids().zip(other.ids()).collect::<Vec<_>>() {
            if self.name(mine) != other.name(theirs)
                || self.value(mine).shape() != other.value(theirs).shape()
            {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("param mismatch at {}", other.name(theirs)),
                ));
            }
            *self.value_mut(mine) = other.value(theirs).clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sarn_io_{name}_{}", std::process::id()))
    }

    #[test]
    fn tensor_roundtrips() {
        let t = Tensor::from_vec(2, 3, vec![1.0, -2.5, 3.25, 0.0, f32::MIN_POSITIVE, 1e9]);
        let p = tmp("tensor");
        t.save(&p).unwrap();
        let back = Tensor::load(&p).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn store_roundtrips_names_and_values() {
        let mut s = ParamStore::new();
        let a = s.add("layer.w", Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = s.add("layer.b", Tensor::row(&[0.5, -0.5]));
        let p = tmp("store");
        s.save(&p).unwrap();
        let loaded = ParamStore::load(&p).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.value(a), s.value(a));
        assert_eq!(loaded.value(b), s.value(b));
        assert_eq!(loaded.name(a), "layer.w");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn load_values_from_rejects_layout_mismatch() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::zeros(1, 2));
        let p = tmp("mismatch");
        s.save(&p).unwrap();
        let mut other = ParamStore::new();
        other.add("w", Tensor::zeros(2, 2)); // different shape
        assert!(other.load_values_from(&p).is_err());
        let mut ok = ParamStore::new();
        ok.add("w", Tensor::ones(1, 2));
        ok.load_values_from(&p).unwrap();
        assert_eq!(ok.value(ok.ids().next().unwrap()).data(), &[0.0, 0.0]);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn loading_garbage_fails_cleanly() {
        let p = tmp("garbage");
        std::fs::write(&p, b"not a tensor at all").unwrap();
        assert!(Tensor::load(&p).is_err());
        assert!(ParamStore::load(&p).is_err());
        std::fs::remove_file(p).ok();
    }
}
