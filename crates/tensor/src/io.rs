//! Persistence for tensors and parameter stores.
//!
//! A deliberately simple little-endian binary format (magic + shape +
//! payload) so trained embeddings and models survive process restarts
//! without any serialization dependency. The streaming primitives
//! ([`write_tensor_to`], [`read_tensor_from`], [`write_str_to`],
//! [`read_str_from`], and the raw-store variants on [`ParamStore`]) are
//! public so higher layers (e.g. the training checkpoint subsystem) can
//! embed tensors and stores inside their own framed formats.
//!
//! Every fallible operation returns a typed [`IoError`] — a truncated or
//! corrupt embedding file surfaces as a descriptive error a serving path
//! can handle, never a panic or an unbounded allocation. For callers in
//! `std::io::Result` contexts, [`IoError`] converts losslessly into
//! [`std::io::Error`] (format problems become `InvalidData`).

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::params::ParamStore;
use crate::tensor::Tensor;

const TENSOR_MAGIC: &[u8; 4] = b"SRT1";
const STORE_MAGIC: &[u8; 4] = b"SRS1";

/// Payloads are read in chunks of at most this many bytes, so a corrupt
/// header claiming an enormous shape fails with [`IoError::Truncated`]
/// after a bounded allocation instead of aborting on an out-of-memory.
const MAX_CHUNK: usize = 1 << 22; // 4 MiB

/// Sanity bound on length-prefixed strings (parameter names).
const MAX_STR_LEN: usize = 1 << 20;

/// Typed failure of tensor / parameter-store persistence.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure (open, read, write, flush).
    Io(io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// Magic the reader expected (`SRT1` for tensors, `SRS1` for
        /// stores).
        expected: &'static str,
    },
    /// The stream ended in the middle of `context`.
    Truncated {
        /// What was being read when the stream ran dry.
        context: &'static str,
    },
    /// A header claims a tensor shape whose element count overflows.
    ShapeOverflow {
        /// Claimed row count.
        rows: usize,
        /// Claimed column count.
        cols: usize,
    },
    /// A length-prefixed string exceeds the sanity bound.
    StringTooLong {
        /// Claimed byte length.
        len: usize,
    },
    /// A string payload is not valid UTF-8.
    InvalidUtf8,
    /// Two parameter stores disagree on layout (names or shapes).
    LayoutMismatch(String),
    /// A loaded tensor's shape disagrees with what the caller expected
    /// (see [`TensorExpectation`]).
    ShapeMismatch {
        /// Row count the caller required, if any.
        expected_rows: Option<usize>,
        /// Column count the caller required, if any.
        expected_cols: Option<usize>,
        /// Row count found in the file.
        rows: usize,
        /// Column count found in the file.
        cols: usize,
    },
    /// A loaded tensor contains a NaN or infinite value where the caller
    /// required an all-finite payload (see [`TensorExpectation`]).
    NonFinite {
        /// Row of the first offending value.
        row: usize,
        /// Column of the first offending value.
        col: usize,
        /// The offending value.
        value: f32,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "{e}"),
            IoError::BadMagic { expected } => {
                write!(f, "bad magic: expected a {expected} file")
            }
            IoError::Truncated { context } => {
                write!(f, "truncated stream while reading {context}")
            }
            IoError::ShapeOverflow { rows, cols } => {
                write!(f, "tensor shape {rows}x{cols} overflows")
            }
            IoError::StringTooLong { len } => {
                write!(
                    f,
                    "string length {len} exceeds the {MAX_STR_LEN}-byte bound"
                )
            }
            IoError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            IoError::LayoutMismatch(detail) => write!(f, "{detail}"),
            IoError::ShapeMismatch {
                expected_rows,
                expected_cols,
                rows,
                cols,
            } => {
                let fmt_dim = |d: &Option<usize>| match d {
                    Some(v) => v.to_string(),
                    None => "any".to_string(),
                };
                write!(
                    f,
                    "tensor shape {rows}x{cols} does not match expected {}x{}",
                    fmt_dim(expected_rows),
                    fmt_dim(expected_cols)
                )
            }
            IoError::NonFinite { row, col, value } => {
                write!(f, "non-finite value {value} at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<IoError> for io::Error {
    /// Lossless for [`IoError::Io`]; every format problem maps to
    /// [`io::ErrorKind::InvalidData`] with the typed error's message.
    fn from(e: IoError) -> Self {
        match e {
            IoError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// `read_exact` that reports a clean EOF inside `context` as
/// [`IoError::Truncated`] rather than a bare I/O error.
fn read_exact_ctx(r: &mut impl Read, buf: &mut [u8], context: &'static str) -> Result<(), IoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            IoError::Truncated { context }
        } else {
            IoError::Io(e)
        }
    })
}

/// Writes a `u32` in little-endian order.
pub fn write_u32_to(w: &mut impl Write, v: u32) -> Result<(), IoError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

/// Reads a little-endian `u32`.
pub fn read_u32_from(r: &mut impl Read) -> Result<u32, IoError> {
    let mut buf = [0u8; 4];
    read_exact_ctx(r, &mut buf, "u32")?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes a `u64` in little-endian order.
pub fn write_u64_to(w: &mut impl Write, v: u64) -> Result<(), IoError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

/// Reads a little-endian `u64`.
pub fn read_u64_from(r: &mut impl Read) -> Result<u64, IoError> {
    let mut buf = [0u8; 8];
    read_exact_ctx(r, &mut buf, "u64")?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a tensor's shape and row-major payload (no magic).
pub fn write_tensor_to(w: &mut impl Write, t: &Tensor) -> Result<(), IoError> {
    write_u32_to(w, t.rows() as u32)?;
    write_u32_to(w, t.cols() as u32)?;
    let mut bytes = Vec::with_capacity(t.len() * 4);
    for &v in t.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    Ok(w.write_all(&bytes)?)
}

/// Reads a tensor written by [`write_tensor_to`]. The payload is pulled in
/// bounded chunks, so a damaged header claiming a huge shape fails after at
/// most [`MAX_CHUNK`] bytes of allocation beyond the actual data.
pub fn read_tensor_from(r: &mut impl Read) -> Result<Tensor, IoError> {
    let rows = read_u32_from(r)? as usize;
    let cols = read_u32_from(r)? as usize;
    let total = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(4))
        .ok_or(IoError::ShapeOverflow { rows, cols })?;
    let mut bytes = Vec::new();
    let mut remaining = total;
    while remaining > 0 {
        let chunk = remaining.min(MAX_CHUNK);
        let off = bytes.len();
        bytes.resize(off + chunk, 0);
        read_exact_ctx(r, &mut bytes[off..], "tensor payload")?;
        remaining -= chunk;
    }
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Tensor::from_vec(rows, cols, data))
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_str_to(w: &mut impl Write, s: &str) -> Result<(), IoError> {
    write_u32_to(w, s.len() as u32)?;
    Ok(w.write_all(s.as_bytes())?)
}

/// Reads a string written by [`write_str_to`].
pub fn read_str_from(r: &mut impl Read) -> Result<String, IoError> {
    let len = read_u32_from(r)? as usize;
    if len > MAX_STR_LEN {
        return Err(IoError::StringTooLong { len });
    }
    let mut buf = vec![0u8; len];
    read_exact_ctx(r, &mut buf, "string payload")?;
    String::from_utf8(buf).map_err(|_| IoError::InvalidUtf8)
}

/// What a reloaded tensor artifact must look like to be admitted.
///
/// Serving paths reload embedding files that may have been swapped,
/// truncated, or half-written underneath them; this is the admission
/// contract they validate against **before** publishing the data. Every
/// violation is a typed [`IoError`], so a reloader can keep its
/// last-known-good generation instead of panicking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TensorExpectation {
    /// Required row count (`None` accepts any).
    pub rows: Option<usize>,
    /// Required column count (`None` accepts any).
    pub cols: Option<usize>,
    /// Require every value to be finite (no NaN / ±∞).
    pub finite: bool,
}

impl TensorExpectation {
    /// Expectation pinning both dimensions and requiring finiteness — the
    /// admission contract of an embedding-serving store.
    pub fn embedding(rows: usize, cols: usize) -> Self {
        Self {
            rows: Some(rows),
            cols: Some(cols),
            finite: true,
        }
    }

    /// Checks a tensor against this expectation.
    pub fn validate(&self, t: &Tensor) -> Result<(), IoError> {
        let rows_ok = self.rows.is_none_or(|r| r == t.rows());
        let cols_ok = self.cols.is_none_or(|c| c == t.cols());
        if !rows_ok || !cols_ok {
            return Err(IoError::ShapeMismatch {
                expected_rows: self.rows,
                expected_cols: self.cols,
                rows: t.rows(),
                cols: t.cols(),
            });
        }
        if self.finite {
            if let Some(pos) = t.data().iter().position(|v| !v.is_finite()) {
                let cols = t.cols().max(1);
                return Err(IoError::NonFinite {
                    row: pos / cols,
                    col: pos % cols,
                    value: t.data()[pos],
                });
            }
        }
        Ok(())
    }
}

impl Tensor {
    /// Writes this tensor to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), IoError> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(TENSOR_MAGIC)?;
        write_tensor_to(&mut w, self)?;
        Ok(w.flush()?)
    }

    /// Reads a tensor written by [`Tensor::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Tensor, IoError> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        read_exact_ctx(&mut r, &mut magic, "file magic")?;
        if &magic != TENSOR_MAGIC {
            return Err(IoError::BadMagic { expected: "SRT1" });
        }
        read_tensor_from(&mut r)
    }

    /// Reads a tensor written by [`Tensor::save`] and validates it against
    /// `expect` before returning it — the reload entry point for serving
    /// paths, which must reject a wrong-shaped or non-finite artifact
    /// *before* it can be published to readers.
    pub fn load_validated(
        path: impl AsRef<Path>,
        expect: &TensorExpectation,
    ) -> Result<Tensor, IoError> {
        let t = Tensor::load(path)?;
        expect.validate(&t)?;
        Ok(t)
    }
}

impl ParamStore {
    /// Writes all parameter names and values (gradients are not persisted)
    /// into a raw stream, without the file magic.
    pub fn write_values_to(&self, w: &mut impl Write) -> Result<(), IoError> {
        write_u32_to(w, self.len() as u32)?;
        for id in self.ids() {
            write_str_to(w, self.name(id))?;
            write_tensor_to(w, self.value(id))?;
        }
        Ok(())
    }

    /// Reads a store written by [`ParamStore::write_values_to`].
    pub fn read_values_from(r: &mut impl Read) -> Result<ParamStore, IoError> {
        let count = read_u32_from(r)? as usize;
        let mut store = ParamStore::new();
        for _ in 0..count {
            let name = read_str_from(r)?;
            let value = read_tensor_from(r)?;
            store.add(name, value);
        }
        Ok(store)
    }

    /// Writes all parameter names and values (gradients are not persisted).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), IoError> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(STORE_MAGIC)?;
        self.write_values_to(&mut w)?;
        Ok(w.flush()?)
    }

    /// Reads a store written by [`ParamStore::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<ParamStore, IoError> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        read_exact_ctx(&mut r, &mut magic, "file magic")?;
        if &magic != STORE_MAGIC {
            return Err(IoError::BadMagic { expected: "SRS1" });
        }
        ParamStore::read_values_from(&mut r)
    }

    /// Checks that `other` has this store's exact layout (parameter names
    /// and shapes, in order), returning a descriptive error otherwise.
    pub fn validate_layout_of(&self, other: &ParamStore) -> Result<(), IoError> {
        if other.len() != self.len() {
            return Err(IoError::LayoutMismatch(format!(
                "layout mismatch: {} vs {} params",
                other.len(),
                self.len()
            )));
        }
        for (mine, theirs) in self.ids().zip(other.ids()) {
            if self.name(mine) != other.name(theirs) {
                return Err(IoError::LayoutMismatch(format!(
                    "param name mismatch: expected {}, found {}",
                    self.name(mine),
                    other.name(theirs)
                )));
            }
            if self.value(mine).shape() != other.value(theirs).shape() {
                return Err(IoError::LayoutMismatch(format!(
                    "param {} shape mismatch: expected {:?}, found {:?}",
                    self.name(mine),
                    self.value(mine).shape(),
                    other.value(theirs).shape()
                )));
            }
        }
        Ok(())
    }

    /// Copies values from another store after validating the full layout,
    /// so a mismatch anywhere leaves this store untouched.
    pub fn copy_values_validated(&mut self, other: &ParamStore) -> Result<(), IoError> {
        self.validate_layout_of(other)?;
        for (mine, theirs) in self.ids().zip(other.ids()).collect::<Vec<_>>() {
            *self.value_mut(mine) = other.value(theirs).clone();
        }
        Ok(())
    }

    /// Loads values from a file into this store; the layout (names and
    /// shapes, in order) must match. Validation runs against the complete
    /// file before any value is written, so an error never leaves the store
    /// partially loaded.
    pub fn load_values_from(&mut self, path: impl AsRef<Path>) -> Result<(), IoError> {
        let other = ParamStore::load(path)?;
        self.copy_values_validated(&other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sarn_io_{name}_{}", std::process::id()))
    }

    #[test]
    fn tensor_roundtrips() {
        let t = Tensor::from_vec(2, 3, vec![1.0, -2.5, 3.25, 0.0, f32::MIN_POSITIVE, 1e9]);
        let p = tmp("tensor");
        t.save(&p).unwrap();
        let back = Tensor::load(&p).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn store_roundtrips_names_and_values() {
        let mut s = ParamStore::new();
        let a = s.add("layer.w", Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = s.add("layer.b", Tensor::row(&[0.5, -0.5]));
        let p = tmp("store");
        s.save(&p).unwrap();
        let loaded = ParamStore::load(&p).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.value(a), s.value(a));
        assert_eq!(loaded.value(b), s.value(b));
        assert_eq!(loaded.name(a), "layer.w");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn load_values_from_rejects_layout_mismatch() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::zeros(1, 2));
        let p = tmp("mismatch");
        s.save(&p).unwrap();
        let mut other = ParamStore::new();
        other.add("w", Tensor::zeros(2, 2)); // different shape
        assert!(matches!(
            other.load_values_from(&p),
            Err(IoError::LayoutMismatch(_))
        ));
        let mut ok = ParamStore::new();
        ok.add("w", Tensor::ones(1, 2));
        ok.load_values_from(&p).unwrap();
        assert_eq!(ok.value(ok.ids().next().unwrap()).data(), &[0.0, 0.0]);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn load_values_from_is_transactional_on_late_mismatch() {
        // The first param matches, the second does not: after the failed
        // load, *neither* value may have changed.
        let mut on_disk = ParamStore::new();
        on_disk.add("a", Tensor::from_vec(1, 2, vec![9.0, 9.0]));
        on_disk.add("b", Tensor::zeros(3, 3));
        let p = tmp("transactional");
        on_disk.save(&p).unwrap();
        let mut target = ParamStore::new();
        let a = target.add("a", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = target.add("b", Tensor::ones(2, 3)); // shape differs
        assert!(target.load_values_from(&p).is_err());
        assert_eq!(target.value(a).data(), &[1.0, 2.0]);
        assert_eq!(target.value(b).data(), &[1.0; 6]);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn raw_store_stream_roundtrips() {
        let mut s = ParamStore::new();
        s.add("x", Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let mut buf = Vec::new();
        s.write_values_to(&mut buf).unwrap();
        let back = ParamStore::read_values_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(
            back.value(back.ids().next().unwrap()).data(),
            &[1., 2., 3., 4.]
        );
    }

    #[test]
    fn loading_garbage_fails_with_bad_magic() {
        let p = tmp("garbage");
        std::fs::write(&p, b"not a tensor at all").unwrap();
        assert!(matches!(
            Tensor::load(&p),
            Err(IoError::BadMagic { expected: "SRT1" })
        ));
        assert!(matches!(
            ParamStore::load(&p),
            Err(IoError::BadMagic { expected: "SRS1" })
        ));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn truncated_tensor_file_is_a_typed_truncation() {
        // Cut a valid file at several depths: inside the magic, inside the
        // header, and inside the payload. Every cut is an error — never a
        // panic, never a partial tensor.
        let t = Tensor::from_vec(4, 4, (0..16).map(|i| i as f32).collect());
        let p = tmp("trunc");
        t.save(&p).unwrap();
        let full = std::fs::read(&p).unwrap();
        for cut in [0, 2, 4, 6, 9, full.len() - 1] {
            std::fs::write(&p, &full[..cut]).unwrap();
            match Tensor::load(&p) {
                Err(IoError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn huge_claimed_shape_fails_bounded_not_oom() {
        // A header claiming a ~16 GiB tensor with no payload behind it must
        // fail with Truncated after at most one bounded chunk allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(1u32 << 16).to_le_bytes()); // rows
        bytes.extend_from_slice(&(1u32 << 16).to_le_bytes()); // cols
        match read_tensor_from(&mut bytes.as_slice()) {
            Err(IoError::Truncated { .. }) => {}
            other => panic!("expected bounded failure, got {other:?}"),
        }
        // Overflowing shapes are rejected before any allocation.
        let mut overflow = Vec::new();
        overflow.extend_from_slice(&u32::MAX.to_le_bytes());
        overflow.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_tensor_from(&mut overflow.as_slice()) {
            Err(IoError::ShapeOverflow { .. }) => {}
            other => panic!("expected ShapeOverflow, got {other:?}"),
        }
    }

    #[test]
    fn oversized_string_and_bad_utf8_are_typed() {
        let mut bytes = Vec::new();
        write_u32_to(&mut bytes, (MAX_STR_LEN + 1) as u32).unwrap();
        assert!(matches!(
            read_str_from(&mut bytes.as_slice()),
            Err(IoError::StringTooLong { .. })
        ));
        let mut bad = Vec::new();
        write_u32_to(&mut bad, 2).unwrap();
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            read_str_from(&mut bad.as_slice()),
            Err(IoError::InvalidUtf8)
        ));
    }

    #[test]
    fn io_error_converts_to_invalid_data_io_error() {
        // Serving paths holding `std::io::Result` signatures keep working:
        // every format problem maps to InvalidData with the same message.
        let e: io::Error = IoError::LayoutMismatch("names differ".into()).into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("names differ"));
        let inner = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        let e: io::Error = IoError::Io(inner).into();
        assert_eq!(e.kind(), io::ErrorKind::PermissionDenied);
    }
}
