//! Low-level compute kernels behind the [`crate::Tensor`] ops, in two
//! numerically distinct flavors selected by the process-wide
//! [`sarn_par::ReductionOrder`] knob:
//!
//! - **Reference**: the original scalar loops, left-to-right accumulation.
//!   Bit-identical to the pre-SIMD kernels at every thread count; every
//!   bitwise-determinism suite (resume, parallel equivalence, telemetry
//!   invisibility) runs against this path.
//! - **Fast**: blocked/tiled loops shaped so the compiler autovectorizes
//!   them — [`LANES`]-wide multi-accumulator dot products and a packed-B
//!   panel matmul with [`BLOCK_K`]-deep cache blocking. Sums are
//!   re-associated across lane accumulators (in a *fixed* order), so Fast
//!   is self-deterministic but not bitwise comparable to Reference.
//!
//! Both flavors split parallel work through the same `sarn_par` row
//! partitioning, so thread count never changes results in either mode.
//!
//! The packed-B layout and the block/tile boundary handling are pinned by
//! golden-value tests (`tests/kernel_golden.rs`); the Fast↔Reference
//! numerical contract is pinned by property tests
//! (`tests/kernel_equivalence.rs`).

use crate::tensor::par_min_out;

/// SIMD lane width (in `f32` elements) the Fast reductions block by: a
/// 256-bit vector register. The kernels are written as plain indexed loops
/// over `[f32; LANES]` chunks — correct for any target, merely fastest when
/// the hardware vector width matches.
pub const LANES: usize = 8;

/// Column width of one packed-B panel ([`pack_b_panels`]): two cache lines
/// of `f32`, i.e. two 256-bit vectors in flight per k-step.
pub const PANEL_COLS: usize = 16;

/// Depth of one k-block in the Fast matmul: a `BLOCK_K x PANEL_COLS` panel
/// slab is 32 KiB — it stays L1-resident while every output row of the
/// chunk passes over it.
pub const BLOCK_K: usize = 512;

/// ELU activation, the exact expression shared by the map-based op and the
/// fused scatter so both produce bit-identical values.
#[inline]
pub fn elu(x: f32, alpha: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        alpha * (x.exp() - 1.0)
    }
}

// ---- dot / norm / cosine -----------------------------------------------

/// Scalar left-to-right dot product (the Reference association).
#[inline]
pub fn dot_reference(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// [`LANES`]-accumulator dot product. Partial sums are combined by a fixed
/// pairwise tree plus the scalar tail, so the result is deterministic but
/// associates differently from [`dot_reference`].
#[inline]
pub fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let chunks_a = a.chunks_exact(LANES);
    let chunks_b = b.chunks_exact(LANES);
    let (tail_a, tail_b) = (chunks_a.remainder(), chunks_b.remainder());
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in tail_a.iter().zip(tail_b.iter()) {
        tail += x * y;
    }
    reduce_lanes(&acc) + tail
}

/// Fixed pairwise reduction of the lane accumulators:
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
#[inline]
fn reduce_lanes(acc: &[f32; LANES]) -> f32 {
    let mut fold = [0.0f32; LANES / 2];
    for l in 0..LANES / 2 {
        fold[l] = acc[l] + acc[l + LANES / 2];
    }
    (fold[0] + fold[2]) + (fold[1] + fold[3])
}

/// Dot product in the currently selected reduction order.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    match sarn_par::reduction_order() {
        sarn_par::ReductionOrder::Reference => dot_reference(a, b),
        sarn_par::ReductionOrder::Fast => dot_fast(a, b),
    }
}

/// Scalar left-to-right sum of squares.
#[inline]
pub fn squared_norm_reference(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum()
}

/// [`LANES`]-accumulator sum of squares (Fast association).
#[inline]
pub fn squared_norm_fast(x: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let chunks = x.chunks_exact(LANES);
    let tail_c = chunks.remainder();
    for c in chunks {
        for l in 0..LANES {
            acc[l] += c[l] * c[l];
        }
    }
    let mut tail = 0.0f32;
    for &v in tail_c {
        tail += v * v;
    }
    reduce_lanes(&acc) + tail
}

/// Sum of squares in the currently selected reduction order.
#[inline]
pub fn squared_norm(x: &[f32]) -> f32 {
    match sarn_par::reduction_order() {
        sarn_par::ReductionOrder::Reference => squared_norm_reference(x),
        sarn_par::ReductionOrder::Fast => squared_norm_fast(x),
    }
}

/// Cosine similarity `a·b / (max(‖a‖, eps) max(‖b‖, eps))` with
/// `eps = 1e-12` — the single scorer shared by the training-side InfoNCE
/// helpers and the serve-side k-NN path. Dispatches on the reduction-order
/// knob through [`dot`] and [`squared_norm`].
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = squared_norm(a).sqrt().max(1e-12);
    let nb = squared_norm(b).sqrt().max(1e-12);
    dot(a, b) / (na * nb)
}

// ---- packed-B panel matmul ---------------------------------------------

/// Packs a row-major `k x m` matrix into column panels of width
/// `panel_cols`: panel `p` covers columns `[p * panel_cols, …)` (the last
/// panel may be narrower) and stores them row-major and contiguously, so
/// the Fast matmul streams one panel with unit stride instead of striding
/// through full rows of B. Panel `p` starts at flat offset
/// `p * panel_cols * k`; total length is exactly `k * m`.
pub fn pack_b_panels(b: &[f32], k: usize, m: usize, panel_cols: usize) -> Vec<f32> {
    assert!(panel_cols > 0, "panel width must be positive");
    assert_eq!(b.len(), k * m, "pack_b_panels shape mismatch");
    let mut packed = Vec::with_capacity(k * m);
    for j0 in (0..m).step_by(panel_cols) {
        let w = panel_cols.min(m - j0);
        for kk in 0..k {
            packed.extend_from_slice(&b[kk * m + j0..kk * m + j0 + w]);
        }
    }
    packed
}

/// Fast `(n x k) * (k x m)` matmul with the default [`PANEL_COLS`] /
/// [`BLOCK_K`] blocking.
pub fn matmul_fast(a: &[f32], n: usize, k: usize, b: &[f32], m: usize) -> Vec<f32> {
    matmul_fast_blocked(a, n, k, b, m, PANEL_COLS, BLOCK_K)
}

/// Fast matmul with explicit blocking parameters (exposed so the golden
/// tests can pin partial-tile handling with tiny hand-computed fixtures).
///
/// Per output-row chunk the loops run `panel -> k-block -> row -> k`, so a
/// `block_k x panel_cols` slab of packed B stays cache-hot across every row
/// of the chunk. Within one output element the k-blocks are visited in
/// ascending order and accumulated into a per-(row, panel) register tile,
/// so the only re-association relative to Reference is the missing
/// zero-skip and the panel tile — the blocking itself preserves ascending-k
/// accumulation.
///
/// # Panics
/// Panics when `panel_cols` exceeds [`PANEL_COLS`] (the register-tile
/// bound) or the slice lengths disagree with the shapes.
pub fn matmul_fast_blocked(
    a: &[f32],
    n: usize,
    k: usize,
    b: &[f32],
    m: usize,
    panel_cols: usize,
    block_k: usize,
) -> Vec<f32> {
    assert!(
        (1..=PANEL_COLS).contains(&panel_cols),
        "panel_cols must be in 1..={PANEL_COLS}"
    );
    assert!(block_k > 0, "block_k must be positive");
    assert_eq!(a.len(), n * k, "matmul lhs shape mismatch");
    assert_eq!(b.len(), k * m, "matmul rhs shape mismatch");
    let mut out = vec![0.0f32; n * m];
    if n == 0 || m == 0 {
        return out;
    }
    if m == 1 {
        // Column-vector rhs: the panel machinery degenerates to a dot
        // product per output row — use the lane-accumulator kernel directly.
        sarn_par::par_chunks_mut(&mut out, 1, par_min_out(k), |offset, chunk| {
            for (di, o) in chunk.iter_mut().enumerate() {
                let i = offset + di;
                *o = dot_fast(&a[i * k..(i + 1) * k], b);
            }
        });
        return out;
    }
    let packed = pack_b_panels(b, k, m, panel_cols);
    sarn_par::par_chunks_mut(&mut out, m, par_min_out(k), |offset, chunk| {
        let i0 = offset / m;
        let rows = chunk.len() / m;
        for j0 in (0..m).step_by(panel_cols) {
            let w = panel_cols.min(m - j0);
            let panel = &packed[j0 * k..j0 * k + k * w];
            for kb in (0..k).step_by(block_k) {
                let kend = (kb + block_k).min(k);
                for di in 0..rows {
                    let arow = &a[(i0 + di) * k..(i0 + di + 1) * k];
                    let dst = &mut chunk[di * m + j0..di * m + j0 + w];
                    let mut acc = [0.0f32; PANEL_COLS];
                    acc[..w].copy_from_slice(dst);
                    for kk in kb..kend {
                        let av = arow[kk];
                        let brow = &panel[kk * w..(kk + 1) * w];
                        for (o, &bv) in acc[..w].iter_mut().zip(brow.iter()) {
                            *o += av * bv;
                        }
                    }
                    dst.copy_from_slice(&acc[..w]);
                }
            }
        }
    });
    out
}

/// Fast `(n x k) * (m x k)^T`: every output element is a dot of two
/// contiguous rows, computed with the [`dot_fast`] lane accumulators (the
/// Reference loop here is a serial dependence chain — this is the kernel
/// where re-association buys the most).
pub fn matmul_t_fast(a: &[f32], n: usize, k: usize, b: &[f32], m: usize) -> Vec<f32> {
    assert_eq!(a.len(), n * k, "matmul_t lhs shape mismatch");
    assert_eq!(b.len(), m * k, "matmul_t rhs shape mismatch");
    let mut out = vec![0.0f32; n * m];
    if n == 0 || m == 0 {
        return out;
    }
    sarn_par::par_chunks_mut(&mut out, m, par_min_out(k), |offset, chunk| {
        let i0 = offset / m;
        for (di, orow) in chunk.chunks_mut(m).enumerate() {
            let arow = &a[(i0 + di) * k..(i0 + di + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot_fast(arow, &b[j * k..(j + 1) * k]);
            }
        }
    });
    out
}

/// Fast `(k x n)^T * (k x m)`: the Reference kk-outer loop minus its
/// zero-skip branch, so the axpy-shaped inner loop vectorizes cleanly.
/// Per-element accumulation stays in ascending `kk` order.
pub fn t_matmul_fast(a: &[f32], k: usize, n: usize, b: &[f32], m: usize) -> Vec<f32> {
    assert_eq!(a.len(), k * n, "t_matmul lhs shape mismatch");
    assert_eq!(b.len(), k * m, "t_matmul rhs shape mismatch");
    let mut out = vec![0.0f32; n * m];
    if n == 0 || m == 0 {
        return out;
    }
    sarn_par::par_chunks_mut(&mut out, m, par_min_out(k), |offset, chunk| {
        let (i0, i1) = (offset / m, (offset + chunk.len()) / m);
        for kk in 0..k {
            let arow = &a[kk * n + i0..kk * n + i1];
            let brow = &b[kk * m..(kk + 1) * m];
            for (di, &av) in arow.iter().enumerate() {
                let orow = &mut chunk[di * m..(di + 1) * m];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_dot_matches_reference_closely() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 * 0.71).cos()).collect();
        let r = dot_reference(&a, &b);
        let f = dot_fast(&a, &b);
        assert!((r - f).abs() <= 1e-5 * (1.0 + r.abs()), "{r} vs {f}");
    }

    #[test]
    fn fast_dot_handles_short_and_empty_inputs() {
        assert_eq!(dot_fast(&[], &[]), 0.0);
        assert_eq!(dot_fast(&[2.0], &[3.0]), 6.0);
        let a = [1.0, 2.0, 3.0];
        assert_eq!(dot_fast(&a, &a), 14.0);
    }

    #[test]
    fn squared_norm_flavors_agree() {
        let x: Vec<f32> = (0..21).map(|i| i as f32 - 10.0).collect();
        let r = squared_norm_reference(&x);
        let f = squared_norm_fast(&x);
        assert!((r - f).abs() <= 1e-4 * (1.0 + r.abs()));
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let x: Vec<f32> = (1..20).map(|i| i as f32 * 0.3).collect();
        assert!((cosine(&x, &x) - 1.0).abs() < 1e-5);
        // Zero vectors hit the eps guard instead of dividing by zero.
        assert_eq!(cosine(&[0.0; 4], &[0.0; 4]), 0.0);
    }

    #[test]
    fn packed_panels_preserve_every_element() {
        let (k, m) = (4, 7);
        let b: Vec<f32> = (0..k * m).map(|v| v as f32).collect();
        let packed = pack_b_panels(&b, k, m, 3);
        assert_eq!(packed.len(), k * m);
        let mut seen = packed.clone();
        let mut orig = b.clone();
        seen.sort_by(f32::total_cmp);
        orig.sort_by(f32::total_cmp);
        assert_eq!(seen, orig);
    }
}
