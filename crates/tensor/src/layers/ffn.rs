//! Feed-forward network (MLP) with a configurable activation.

use rand::Rng;

use crate::autograd::{Graph, Var};
use crate::params::{ParamId, ParamStore};

use super::linear::Linear;

/// Activation function applied between FFN layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// x>0 ? x : alpha(e^x - 1) with alpha = 1
    Elu,
    /// tanh(x)
    Tanh,
    /// logistic sigmoid
    Sigmoid,
    /// no activation
    Identity,
}

/// A stack of [`Linear`] layers with activations between them (not after the
/// last layer), e.g. the `FC ∘ ReLU ∘ FC` projection head of Eq. 11.
#[derive(Clone, Debug)]
pub struct Ffn {
    layers: Vec<Linear>,
    act: Activation,
}

impl Ffn {
    /// Builds an FFN with the given layer widths, e.g. `[128, 64, 32]` makes
    /// two linear layers `128 -> 64 -> 32`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        widths: &[usize],
        act: Activation,
    ) -> Self {
        assert!(widths.len() >= 2, "an FFN needs at least one layer");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.fc{i}"), w[0], w[1], true))
            .collect();
        Self { layers, act }
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.layers[0].d_in()
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.layers
            .last()
            .expect("ffn has at least one layer")
            .d_out()
    }

    /// All parameter ids, layer by layer.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.layers.iter().flat_map(Linear::param_ids).collect()
    }

    /// Records the full forward pass on the tape.
    pub fn forward(&self, g: &Graph, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, store, h);
            if i + 1 < self.layers.len() {
                h = match self.act {
                    Activation::Relu => g.relu(h),
                    Activation::Elu => g.elu(h, 1.0),
                    Activation::Tanh => g.tanh(h),
                    Activation::Sigmoid => g.sigmoid(h),
                    Activation::Identity => h,
                };
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ffn_shapes_follow_widths() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let ffn = Ffn::new(&mut store, &mut rng, "f", &[8, 16, 4], Activation::Relu);
        assert_eq!(ffn.d_in(), 8);
        assert_eq!(ffn.d_out(), 4);
        let g = Graph::new();
        let x = g.input(Tensor::ones(3, 8));
        let y = ffn.forward(&g, &store, x);
        assert_eq!(g.shape(y), (3, 4));
        assert_eq!(ffn.param_ids().len(), 4);
    }

    #[test]
    fn ffn_learns_xor_like_mapping() {
        // Tiny sanity check: fit y = x0 * 4 - 1 on 1-d input with 2-layer net.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let ffn = Ffn::new(&mut store, &mut rng, "f", &[1, 8, 1], Activation::Tanh);
        let xs = Tensor::from_vec(4, 1, vec![0.0, 0.25, 0.5, 1.0]);
        let ys = xs.map(|v| 4.0 * v - 1.0);
        let mut opt = crate::optim::Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            store.zero_grads();
            let g = Graph::new();
            let x = g.input(xs.clone());
            let p = ffn.forward(&g, &store, x);
            let loss = g.mse(p, &ys);
            last = g.value(loss).item();
            g.backward(loss);
            g.accumulate_grads(&mut store);
            opt.step(&mut store);
        }
        assert!(last < 1e-2, "loss {last}");
    }
}
