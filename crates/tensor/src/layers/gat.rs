//! Graph attention network (GAT) layers (Velickovic et al., ICLR 2018),
//! implemented sparsely over an edge list so memory scales with the number
//! of edges rather than `n^2`.

use std::rc::Rc;

use rand::Rng;

use crate::autograd::{Graph, Var};
use crate::init::xavier_uniform;
use crate::params::{ParamId, ParamStore};

/// Negative slope of the LeakyReLU applied to raw attention scores (Eq. 10).
const ATTN_LEAKY_SLOPE: f32 = 0.2;

/// Edge list describing the neighborhood structure a GAT layer attends over.
///
/// Edge `e` sends a message from node `neighbor[e]` into node `center[e]`;
/// attention is normalized per center node. Construct with
/// [`EdgeIndex::with_self_loops`] so every node receives at least its own
/// message even after aggressive graph corruption.
#[derive(Clone, Debug)]
pub struct EdgeIndex {
    /// Per-edge anchor (destination) node, i.e. `i` in `alpha_ij`.
    pub center: Rc<Vec<usize>>,
    /// Per-edge message source node, i.e. `j` in `alpha_ij`.
    pub neighbor: Rc<Vec<usize>>,
    /// Number of nodes.
    pub n: usize,
}

impl EdgeIndex {
    /// Builds an edge index from `(center, neighbor)` pairs, appending one
    /// self-loop per node.
    pub fn with_self_loops(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut center = Vec::new();
        let mut neighbor = Vec::new();
        for (c, nb) in pairs {
            debug_assert!(c < n && nb < n, "edge endpoint out of range");
            center.push(c);
            neighbor.push(nb);
        }
        for i in 0..n {
            center.push(i);
            neighbor.push(i);
        }
        Self {
            center: Rc::new(center),
            neighbor: Rc::new(neighbor),
            n,
        }
    }

    /// Number of edges (including self-loops).
    pub fn num_edges(&self) -> usize {
        self.center.len()
    }
}

struct Head {
    w: ParamId,
    a: ParamId,
}

/// One multi-head GAT layer (Eq. 8–10 of the SARN paper).
pub struct GatLayer {
    heads: Vec<Head>,
    d_in: usize,
    d_head: usize,
    /// Concatenate head outputs (hidden layers) or average them (final layer).
    concat: bool,
}

impl GatLayer {
    /// Registers a GAT layer with `n_heads` heads of width `d_head`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_head: usize,
        n_heads: usize,
        concat: bool,
    ) -> Self {
        assert!(n_heads >= 1, "a GAT layer needs at least one head");
        let heads = (0..n_heads)
            .map(|h| Head {
                w: store.add(format!("{name}.h{h}.w"), xavier_uniform(rng, d_in, d_head)),
                a: store.add(format!("{name}.h{h}.a"), xavier_uniform(rng, 2 * d_head, 1)),
            })
            .collect();
        Self {
            heads,
            d_in,
            d_head,
            concat,
        }
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Output width (`n_heads * d_head` when concatenating, `d_head` when
    /// averaging).
    pub fn d_out(&self) -> usize {
        if self.concat {
            self.heads.len() * self.d_head
        } else {
            self.d_head
        }
    }

    /// All parameter ids of this layer.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.heads.iter().flat_map(|h| [h.w, h.a]).collect()
    }

    /// Records one attention layer on the tape: per head,
    /// `e_ij = LeakyReLU(a^T [W x_i || W x_j])`, softmax over each node's
    /// in-neighborhood, then the attention-weighted message sum.
    pub fn forward(&self, g: &Graph, store: &ParamStore, x: Var, edges: &EdgeIndex) -> Var {
        self.forward_activated(g, store, x, edges, None)
    }

    /// [`GatLayer::forward`] with an optional ELU (parameter `elu_alpha`)
    /// applied to the layer output. For concatenating (hidden) layers the
    /// ELU is fused into each head's scatter
    /// ([`Graph::segment_weighted_sum_elu`]); because ELU is elementwise and
    /// head concatenation only rearranges columns, this is bit-identical to
    /// `elu(forward(..))` while saving a tape node and an extra pass over
    /// the `n x d` hidden matrix.
    pub fn forward_activated(
        &self,
        g: &Graph,
        store: &ParamStore,
        x: Var,
        edges: &EdgeIndex,
        elu_alpha: Option<f32>,
    ) -> Var {
        let center_idx: &[usize] = &edges.center;
        let neighbor_idx: &[usize] = &edges.neighbor;
        let mut outs = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let w = g.param(store, head.w);
            let a = g.param(store, head.a);
            let wx = g.matmul(x, w);
            let hc = g.gather_rows(wx, center_idx);
            let hn = g.gather_rows(wx, neighbor_idx);
            let cat = g.concat_cols(&[hc, hn]);
            let scores = g.matmul(cat, a);
            let scores = g.leaky_relu(scores, ATTN_LEAKY_SLOPE);
            let alpha = g.segment_softmax(scores, Rc::clone(&edges.center), edges.n);
            let msg = match (self.concat, elu_alpha) {
                (true, Some(al)) => {
                    g.segment_weighted_sum_elu(alpha, hn, Rc::clone(&edges.center), edges.n, al)
                }
                _ => g.segment_weighted_sum(alpha, hn, Rc::clone(&edges.center), edges.n),
            };
            outs.push(msg);
        }
        if self.concat {
            g.concat_cols(&outs)
        } else {
            let mut acc = outs[0];
            for &o in &outs[1..] {
                acc = g.add(acc, o);
            }
            let avg = g.scale(acc, 1.0 / outs.len() as f32);
            // Averaging mixes head outputs, so the ELU cannot be fused into
            // the per-head scatters; apply it on the averaged output.
            match elu_alpha {
                Some(al) => g.elu(avg, al),
                None => avg,
            }
        }
    }
}

/// A stack of GAT layers with ELU activations between layers; the final
/// layer averages its heads (the paper uses 3 layers with L = 4 heads).
pub struct GatEncoder {
    layers: Vec<GatLayer>,
}

impl GatEncoder {
    /// Builds an encoder mapping `d_in -> d_out` through `n_layers` layers of
    /// `n_heads` heads each. Hidden layers concatenate heads and keep an
    /// output width of `d_out` (so `d_out` must be divisible by `n_heads`);
    /// the final layer averages heads of width `d_out`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out: usize,
        n_layers: usize,
        n_heads: usize,
    ) -> Self {
        assert!(n_layers >= 1, "encoder needs at least one layer");
        assert_eq!(
            d_out % n_heads,
            0,
            "d_out ({d_out}) must be divisible by n_heads ({n_heads})"
        );
        let mut layers = Vec::with_capacity(n_layers);
        let mut width = d_in;
        for l in 0..n_layers {
            let last = l + 1 == n_layers;
            let layer = if last {
                GatLayer::new(
                    store,
                    rng,
                    &format!("{name}.gat{l}"),
                    width,
                    d_out,
                    n_heads,
                    false,
                )
            } else {
                GatLayer::new(
                    store,
                    rng,
                    &format!("{name}.gat{l}"),
                    width,
                    d_out / n_heads,
                    n_heads,
                    true,
                )
            };
            width = layer.d_out();
            layers.push(layer);
        }
        Self { layers }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.layers
            .last()
            .expect("encoder has at least one layer")
            .d_out()
    }

    /// All parameter ids across layers.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.layers.iter().flat_map(GatLayer::param_ids).collect()
    }

    /// Parameter ids of the final layer only (fine-tuned by SARN*).
    pub fn last_layer_param_ids(&self) -> Vec<ParamId> {
        self.layers
            .last()
            .expect("encoder has at least one layer")
            .param_ids()
    }

    /// Records the full encoder on the tape. Hidden layers fuse their ELU
    /// into the attention scatter (bit-identical to the separate
    /// `elu(layer(..))` form — see [`GatLayer::forward_activated`]).
    pub fn forward(&self, g: &Graph, store: &ParamStore, x: Var, edges: &EdgeIndex) -> Var {
        let mut h = x;
        for (l, layer) in self.layers.iter().enumerate() {
            let hidden = l + 1 < self.layers.len();
            h = layer.forward_activated(g, store, h, edges, hidden.then_some(1.0));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_graph(n: usize) -> EdgeIndex {
        // 0 <-> 1 <-> 2 ... both directions
        let mut pairs = Vec::new();
        for i in 0..n - 1 {
            pairs.push((i, i + 1));
            pairs.push((i + 1, i));
        }
        EdgeIndex::with_self_loops(n, pairs)
    }

    #[test]
    fn edge_index_adds_self_loops() {
        let e = line_graph(4);
        assert_eq!(e.num_edges(), 6 + 4);
    }

    #[test]
    fn layer_output_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GatLayer::new(&mut store, &mut rng, "g", 6, 4, 3, true);
        assert_eq!(layer.d_out(), 12);
        let g = Graph::new();
        let x = g.input(Tensor::ones(5, 6));
        let y = layer.forward(&g, &store, x, &line_graph(5));
        assert_eq!(g.shape(y), (5, 12));
    }

    #[test]
    fn encoder_stacks_and_averages_final_heads() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = GatEncoder::new(&mut store, &mut rng, "enc", 6, 8, 3, 4);
        assert_eq!(enc.n_layers(), 3);
        assert_eq!(enc.d_out(), 8);
        let g = Graph::new();
        let x = g.input(Tensor::ones(5, 6));
        let y = enc.forward(&g, &store, x, &line_graph(5));
        assert_eq!(g.shape(y), (5, 8));
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn attention_weights_sum_to_one_per_node() {
        // With a single head and identity-ish input, the segment softmax must
        // produce a convex combination: output of a node whose neighbors all
        // carry the same feature row equals that row transformed by W.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GatLayer::new(&mut store, &mut rng, "g", 3, 3, 1, true);
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(4, 3, [[1.0f32, 2.0, 3.0]; 4].concat()));
        let y = layer.forward(&g, &store, x, &line_graph(4));
        let wx = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]).matmul(store.value(layer.heads[0].w));
        let out = g.value(y);
        for i in 0..4 {
            for c in 0..3 {
                assert!((out.at(i, c) - wx.at(0, c)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gradients_reach_every_gat_parameter() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let enc = GatEncoder::new(&mut store, &mut rng, "enc", 4, 4, 2, 2);
        let g = Graph::new();
        let x = g.input(crate::init::normal(&mut rng, 5, 4, 1.0));
        let y = enc.forward(&g, &store, x, &line_graph(5));
        let loss = g.mean_all(g.sqr(y));
        g.backward(loss);
        g.accumulate_grads(&mut store);
        for id in enc.param_ids() {
            assert!(
                store.grad(id).norm_sq() > 0.0,
                "no grad for {}",
                store.name(id)
            );
        }
    }
}
