//! Gated recurrent unit (Cho et al., 2014), used by the trajectory
//! similarity downstream task and the NEUTRAJ baseline.

use rand::Rng;

use crate::autograd::{Graph, Var};
use crate::init::xavier_uniform;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// A single GRU layer.
///
/// Per step: `z = σ(x W_z + h U_z + b_z)`, `r = σ(x W_r + h U_r + b_r)`,
/// `h~ = tanh(x W_h + (r ⊙ h) U_h + b_h)`, `h' = (1 − z) ⊙ h + z ⊙ h~`.
pub struct Gru {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    d_in: usize,
    d_hidden: usize,
}

impl Gru {
    /// Registers a GRU layer mapping `d_in` inputs to `d_hidden` state.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_hidden: usize,
    ) -> Self {
        let mut w = |suffix: &str, r: usize, c: usize| {
            store.add(format!("{name}.{suffix}"), xavier_uniform(rng, r, c))
        };
        let wz = w("wz", d_in, d_hidden);
        let uz = w("uz", d_hidden, d_hidden);
        let wr = w("wr", d_in, d_hidden);
        let ur = w("ur", d_hidden, d_hidden);
        let wh = w("wh", d_in, d_hidden);
        let uh = w("uh", d_hidden, d_hidden);
        let bz = store.add(format!("{name}.bz"), Tensor::zeros(1, d_hidden));
        let br = store.add(format!("{name}.br"), Tensor::zeros(1, d_hidden));
        let bh = store.add(format!("{name}.bh"), Tensor::zeros(1, d_hidden));
        Self {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            d_in,
            d_hidden,
        }
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Hidden-state width.
    pub fn d_hidden(&self) -> usize {
        self.d_hidden
    }

    /// All parameter ids.
    pub fn param_ids(&self) -> Vec<ParamId> {
        vec![
            self.wz, self.uz, self.bz, self.wr, self.ur, self.br, self.wh, self.uh, self.bh,
        ]
    }

    /// A zero initial state for a batch of `batch` sequences.
    pub fn zero_state(&self, g: &Graph, batch: usize) -> Var {
        g.input(Tensor::zeros(batch, self.d_hidden))
    }

    /// Records one GRU step: `(x_t, h_{t-1}) -> h_t`.
    pub fn step(&self, g: &Graph, store: &ParamStore, x: Var, h: Var) -> Var {
        let gate = |w: ParamId, u: ParamId, b: ParamId, hin: Var| {
            let xa = g.matmul(x, g.param(store, w));
            let ha = g.matmul(hin, g.param(store, u));
            g.add_row(g.add(xa, ha), g.param(store, b))
        };
        let z = g.sigmoid(gate(self.wz, self.uz, self.bz, h));
        let r = g.sigmoid(gate(self.wr, self.ur, self.br, h));
        let rh = g.mul(r, h);
        let cand = g.tanh(gate(self.wh, self.uh, self.bh, rh));
        // h' = (1 - z) * h + z * cand
        let keep = g.mul(g.one_minus(z), h);
        let update = g.mul(z, cand);
        g.add(keep, update)
    }

    /// Runs the GRU over a sequence of `(batch x d_in)` inputs, with an
    /// optional per-step `(batch x 1)` validity mask for padded sequences
    /// (masked steps keep the previous state). Returns the final state.
    pub fn run(&self, g: &Graph, store: &ParamStore, xs: &[Var], masks: Option<&[Tensor]>) -> Var {
        assert!(!xs.is_empty(), "empty sequence");
        if let Some(m) = masks {
            assert_eq!(m.len(), xs.len(), "mask count mismatch");
        }
        let batch = g.shape(xs[0]).0;
        let mut h = self.zero_state(g, batch);
        for (t, &x) in xs.iter().enumerate() {
            let hn = self.step(g, store, x, h);
            h = match masks {
                Some(m) => {
                    let mask = g.input(m[t].clone());
                    let keep_new = g.mul_col(hn, mask);
                    let inv = g.input(m[t].map(|v| 1.0 - v));
                    let keep_old = g.mul_col(h, inv);
                    g.add(keep_new, keep_old)
                }
                None => hn,
            };
        }
        h
    }
}

/// A stack of GRU layers (e.g. the 2-layer trajectory encoder of §5.2.2):
/// layer `k+1` consumes the per-step hidden states of layer `k`.
pub struct GruStack {
    layers: Vec<Gru>,
}

impl GruStack {
    /// Builds `n_layers` GRU layers: `d_in -> d_hidden -> ... -> d_hidden`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_hidden: usize,
        n_layers: usize,
    ) -> Self {
        assert!(n_layers >= 1, "GRU stack needs at least one layer");
        let layers = (0..n_layers)
            .map(|l| {
                let din = if l == 0 { d_in } else { d_hidden };
                Gru::new(store, rng, &format!("{name}.l{l}"), din, d_hidden)
            })
            .collect();
        Self { layers }
    }

    /// Hidden width.
    pub fn d_hidden(&self) -> usize {
        self.layers[0].d_hidden()
    }

    /// All parameter ids.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.layers.iter().flat_map(Gru::param_ids).collect()
    }

    /// Runs the stack over a sequence and returns the top layer's final
    /// state. Masked steps keep the previous state in **every** layer.
    pub fn run(&self, g: &Graph, store: &ParamStore, xs: &[Var], masks: Option<&[Tensor]>) -> Var {
        assert!(!xs.is_empty(), "empty sequence");
        let batch = g.shape(xs[0]).0;
        let mut states: Vec<Var> = self.layers.iter().map(|l| l.zero_state(g, batch)).collect();
        for (t, &x) in xs.iter().enumerate() {
            let mut input = x;
            for (l, layer) in self.layers.iter().enumerate() {
                let hn = layer.step(g, store, input, states[l]);
                let h = match masks {
                    Some(m) => {
                        let mask = g.input(m[t].clone());
                        let keep_new = g.mul_col(hn, mask);
                        let inv = g.input(m[t].map(|v| 1.0 - v));
                        let keep_old = g.mul_col(states[l], inv);
                        g.add(keep_new, keep_old)
                    }
                    None => hn,
                };
                states[l] = h;
                input = h;
            }
        }
        *states.last().expect("gru has at least one layer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn step_and_run_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let gru = Gru::new(&mut store, &mut rng, "g", 3, 5);
        let g = Graph::new();
        let xs: Vec<Var> = (0..4).map(|_| g.input(Tensor::ones(2, 3))).collect();
        let h = gru.run(&g, &store, &xs, None);
        assert_eq!(g.shape(h), (2, 5));
        assert_eq!(gru.param_ids().len(), 9);
    }

    #[test]
    fn masked_steps_preserve_state() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let gru = Gru::new(&mut store, &mut rng, "g", 2, 4);
        let g = Graph::new();
        let x0 = g.input(Tensor::ones(1, 2));
        let pad = g.input(Tensor::full(1, 2, 99.0)); // garbage that must be ignored
        let masks = vec![Tensor::ones(1, 1), Tensor::zeros(1, 1)];
        let h_masked = gru.run(&g, &store, &[x0, pad], Some(&masks));
        let h_single = gru.run(&g, &store, &[x0], None);
        let a = g.value(h_masked);
        let b = g.value(h_single);
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn stack_runs_and_masks_consistently() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let stack = GruStack::new(&mut store, &mut rng, "s", 3, 6, 2);
        assert_eq!(stack.param_ids().len(), 18);
        let g = Graph::new();
        let x0 = g.input(Tensor::ones(2, 3));
        let pad = g.input(Tensor::full(2, 3, -7.0));
        let masks = vec![Tensor::ones(2, 1), Tensor::zeros(2, 1)];
        let h_masked = stack.run(&g, &store, &[x0, pad], Some(&masks));
        let h_short = stack.run(&g, &store, &[x0], None);
        assert_eq!(g.shape(h_masked), (2, 6));
        let (a, b) = (g.value(h_masked), g.value(h_short));
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn gru_learns_to_remember_first_input() {
        // Target: output mean of hidden state should regress onto the first
        // element of the sequence, requiring memory across 4 steps.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let gru = Gru::new(&mut store, &mut rng, "g", 1, 8);
        let head = crate::layers::Linear::new(&mut store, &mut rng, "head", 8, 1, true);
        let mut opt = Adam::new(0.02);
        let seqs: Vec<(Vec<f32>, f32)> = vec![
            (vec![1.0, 0.3, -0.2, 0.8], 1.0),
            (vec![-1.0, 0.3, -0.2, 0.8], -1.0),
            (vec![0.5, -0.9, 0.1, 0.0], 0.5),
            (vec![-0.5, -0.9, 0.1, 0.0], -0.5),
        ];
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            store.zero_grads();
            let g = Graph::new();
            let xs: Vec<Var> = (0..4)
                .map(|t| {
                    g.input(Tensor::col(
                        &seqs.iter().map(|(s, _)| s[t]).collect::<Vec<_>>(),
                    ))
                })
                .collect();
            let h = gru.run(&g, &store, &xs, None);
            let pred = head.forward(&g, &store, h);
            let target = Tensor::col(&seqs.iter().map(|(_, y)| *y).collect::<Vec<_>>());
            let loss = g.mse(pred, &target);
            last = g.value(loss).item();
            g.backward(loss);
            g.accumulate_grads(&mut store);
            opt.step(&mut store);
        }
        assert!(last < 0.05, "loss {last}");
    }
}
