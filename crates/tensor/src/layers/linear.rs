//! Fully connected layer.

use rand::Rng;

use crate::autograd::{Graph, Var};
use crate::init::xavier_uniform;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// `y = x W + b` with `W: (d_in x d_out)` and `b: (1 x d_out)`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    d_in: usize,
    d_out: usize,
}

impl Linear {
    /// Registers a new linear layer in `store`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_in: usize,
        d_out: usize,
        bias: bool,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(rng, d_in, d_out));
        let b = bias.then(|| store.add(format!("{name}.b"), Tensor::zeros(1, d_out)));
        Self { w, b, d_in, d_out }
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.d_out
    }

    /// Parameter ids of this layer (weight first, then bias if present).
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = vec![self.w];
        if let Some(b) = self.b {
            ids.push(b);
        }
        ids
    }

    /// Records `x W (+ b)` on the tape.
    pub fn forward(&self, g: &Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.w);
        let y = g.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = g.param(store, b);
                g.add_row(y, bv)
            }
            None => y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 3, true);
        let g = Graph::new();
        let x = g.input(Tensor::ones(5, 4));
        let y = lin.forward(&g, &store, x);
        assert_eq!(g.shape(y), (5, 3));
        assert_eq!(lin.param_ids().len(), 2);
    }

    #[test]
    fn no_bias_layer_registers_one_param() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 3, false);
        assert_eq!(lin.param_ids().len(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn gradients_flow_to_weight_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut store, &mut rng, "l", 2, 2, true);
        let g = Graph::new();
        let x = g.input(Tensor::ones(3, 2));
        let y = lin.forward(&g, &store, x);
        let loss = g.mean_all(y);
        g.backward(loss);
        g.accumulate_grads(&mut store);
        for id in lin.param_ids() {
            assert!(
                store.grad(id).norm_sq() > 0.0,
                "no grad for {}",
                store.name(id)
            );
        }
    }
}
