//! Neural-network layers built on the autograd tape.
//!
//! Each layer registers its weights in a [`crate::ParamStore`] at
//! construction and exposes a `forward(&Graph, &ParamStore, ...)` method that
//! records the computation on the tape, so a single layer instance can be run
//! against both a trained store and a momentum-updated copy with the same
//! layout (the MoCo pattern used by SARN).

mod ffn;
mod gat;
mod gru;
mod linear;

pub use ffn::{Activation, Ffn};
pub use gat::{EdgeIndex, GatEncoder, GatLayer};
pub use gru::{Gru, GruStack};
pub use linear::Linear;
