//! # sarn-tensor
//!
//! A small, dependency-light deep-learning stack built for the Rust
//! reproduction of *SARN: Spatial Structure-Aware Road Network Embedding via
//! Graph Contrastive Learning* (EDBT 2023). The paper trains its models with
//! PyTorch on a GPU; this crate provides the equivalent substrate on the CPU:
//!
//! - [`Tensor`]: dense row-major `f32` matrices with the handful of BLAS-like
//!   kernels the models need;
//! - [`Graph`] / [`Var`]: a reverse-mode autograd tape with sparse
//!   graph-attention primitives (`segment_softmax`, `segment_weighted_sum`),
//!   embedding lookups, and fused losses (cross-entropy, MSE, InfoNCE);
//! - [`ParamStore`]: out-of-tape parameter storage supporting the MoCo
//!   momentum-encoder pattern ([`ParamStore::momentum_update_from`], Eq. 12);
//! - [`layers`]: `Linear`, `Ffn`, sparse multi-head `GatLayer`/`GatEncoder`,
//!   and `Gru`;
//! - [`optim`]: Adam, cosine-annealing schedule, and early stopping;
//! - [`grad_check`]: finite-difference validation used across the test suite.
//!
//! ## Example
//!
//! ```
//! use sarn_tensor::{Graph, ParamStore, Tensor};
//! use sarn_tensor::layers::{Activation, Ffn};
//! use sarn_tensor::optim::Adam;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut store = ParamStore::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = Ffn::new(&mut store, &mut rng, "net", &[2, 8, 1], Activation::Relu);
//! let mut opt = Adam::new(0.01);
//! let x = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
//! let y = Tensor::col(&[0., 1., 1., 0.]);
//! for _ in 0..10 {
//!     store.zero_grads();
//!     let g = Graph::new();
//!     let input = g.input(x.clone());
//!     let pred = net.forward(&g, &store, input);
//!     let loss = g.mse(pred, &y);
//!     g.backward(loss);
//!     g.accumulate_grads(&mut store);
//!     opt.step(&mut store);
//! }
//! ```

#![warn(missing_docs)]

mod autograd;
pub mod grad_check;
pub mod init;
pub mod io;
pub mod kernels;
pub mod layers;
pub mod optim;
mod params;
mod tensor;

pub use autograd::{Graph, Var};
pub use io::{IoError, TensorExpectation};
pub use params::{ParamId, ParamStore};
pub use tensor::Tensor;
