//! Optimizers and learning-rate schedules.

use crate::params::ParamStore;
use crate::tensor::Tensor;

/// Adam optimizer with bias correction (Kingma & Ba, 2015).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    clip_norm: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip_norm: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Sets L2 weight decay (added to the raw gradient).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Enables global gradient-norm clipping: before each step the
    /// accumulated gradients are scaled so their global L2 norm does not
    /// exceed `clip_norm` (`0`, the default, disables clipping). Note the
    /// clip happens *in the store*, so a checkpoint taken afterwards sees
    /// the clipped gradients — exactly what was applied.
    pub fn with_clip_norm(mut self, clip_norm: f32) -> Self {
        self.clip_norm = clip_norm;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (used with a schedule).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of update steps taken so far (drives bias correction).
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// First-moment estimates, one tensor per parameter (empty before the
    /// first step).
    pub fn first_moments(&self) -> &[Tensor] {
        &self.m
    }

    /// Second-moment estimates, one tensor per parameter (empty before the
    /// first step).
    pub fn second_moments(&self) -> &[Tensor] {
        &self.v
    }

    /// Restores the optimizer state captured by [`Adam::step_count`] /
    /// [`Adam::first_moments`] / [`Adam::second_moments`], so a checkpointed
    /// run resumes with bit-identical updates. Moment vectors must be the
    /// same length (both may be empty, meaning "before the first step").
    ///
    /// # Panics
    /// Panics if `m` and `v` have different lengths or mismatched shapes.
    pub fn restore_state(&mut self, t: u64, m: Vec<Tensor>, v: Vec<Tensor>) {
        assert_eq!(m.len(), v.len(), "moment vectors differ in length");
        for (a, b) in m.iter().zip(&v) {
            assert_eq!(a.shape(), b.shape(), "moment tensor shape mismatch");
        }
        self.t = t;
        self.m = m;
        self.v = v;
    }

    /// Applies one update step using the gradients accumulated in `store`,
    /// then leaves the gradients untouched (call
    /// [`ParamStore::zero_grads`] before the next forward pass).
    pub fn step(&mut self, store: &mut ParamStore) {
        if self.clip_norm > 0.0 {
            store.clip_grad_norm(self.clip_norm);
        }
        if self.m.len() != store.len() {
            self.m = store
                .ids()
                .map(|id| {
                    let (r, c) = store.value(id).shape();
                    Tensor::zeros(r, c)
                })
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for id in store.ids() {
            let i = id.index();
            // Split borrows: read grad, then update value.
            let grad = store.grad(id).clone();
            let value = store.value_mut(id);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for k in 0..grad.len() {
                let mut g = grad.data()[k];
                if self.weight_decay > 0.0 {
                    g += self.weight_decay * value.data()[k];
                }
                let md = &mut m.data_mut()[k];
                *md = self.beta1 * *md + (1.0 - self.beta1) * g;
                let vd = &mut v.data_mut()[k];
                *vd = self.beta2 * *vd + (1.0 - self.beta2) * g * g;
                let mhat = *md / bc1;
                let vhat = *vd / bc2;
                value.data_mut()[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Cosine-annealing learning-rate schedule:
/// `lr(t) = lr_min + (lr_max - lr_min) * (1 + cos(pi * t / T)) / 2`.
#[derive(Clone, Copy, Debug)]
pub struct CosineAnnealing {
    lr_max: f32,
    lr_min: f32,
    total_steps: u64,
}

impl CosineAnnealing {
    /// Creates a schedule decaying from `lr_max` to `lr_min` over
    /// `total_steps` steps.
    pub fn new(lr_max: f32, lr_min: f32, total_steps: u64) -> Self {
        assert!(total_steps > 0, "schedule needs at least one step");
        Self {
            lr_max,
            lr_min,
            total_steps,
        }
    }

    /// Learning rate at step `t` (clamped to the end of the schedule).
    pub fn lr_at(&self, t: u64) -> f32 {
        let t = t.min(self.total_steps) as f32 / self.total_steps as f32;
        self.lr_min + (self.lr_max - self.lr_min) * (1.0 + (std::f32::consts::PI * t).cos()) / 2.0
    }
}

/// Early-stopping tracker with a patience budget (lower metric is better).
#[derive(Clone, Debug)]
pub struct EarlyStopping {
    patience: u32,
    best: f32,
    bad_epochs: u32,
}

impl EarlyStopping {
    /// Creates a tracker allowing `patience` consecutive non-improving epochs.
    pub fn new(patience: u32) -> Self {
        Self {
            patience,
            best: f32::INFINITY,
            bad_epochs: 0,
        }
    }

    /// Records an epoch metric; returns `true` when training should stop.
    pub fn update(&mut self, metric: f32) -> bool {
        if metric < self.best - 1e-6 {
            self.best = metric;
            self.bad_epochs = 0;
        } else {
            self.bad_epochs += 1;
        }
        self.bad_epochs > self.patience
    }

    /// Best metric seen so far.
    pub fn best(&self) -> f32 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Graph;
    use crate::params::ParamStore;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // minimize (w - 3)^2 elementwise
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 2, vec![0.0, 10.0]));
        let target = Tensor::from_vec(1, 2, vec![3.0, 3.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            store.zero_grads();
            let g = Graph::new();
            let wv = g.param(&store, w);
            let loss = g.mse(wv, &target);
            g.backward(loss);
            g.accumulate_grads(&mut store);
            opt.step(&mut store);
        }
        for &v in store.value(w).data() {
            assert!((v - 3.0).abs() < 1e-2, "converged to {v}");
        }
    }

    #[test]
    fn adam_state_restore_reproduces_the_trajectory() {
        // Run A: 20 uninterrupted steps. Run B: 10 steps, export, restore
        // into a fresh optimizer, 10 more. Parameters must match bitwise.
        let run = |split: Option<usize>| -> Vec<f32> {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_vec(1, 2, vec![0.0, 10.0]));
            let target = Tensor::from_vec(1, 2, vec![3.0, 3.0]);
            let mut opt = Adam::new(0.1);
            for step in 0..20 {
                if split == Some(step) {
                    let (t, m, v) = (
                        opt.step_count(),
                        opt.first_moments().to_vec(),
                        opt.second_moments().to_vec(),
                    );
                    opt = Adam::new(0.1);
                    opt.restore_state(t, m, v);
                }
                store.zero_grads();
                let g = Graph::new();
                let wv = g.param(&store, w);
                let loss = g.mse(wv, &target);
                g.backward(loss);
                g.accumulate_grads(&mut store);
                opt.step(&mut store);
            }
            store.value(w).data().to_vec()
        };
        assert_eq!(run(None), run(Some(10)));
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = CosineAnnealing::new(1.0, 0.1, 100);
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(100) - 0.1).abs() < 1e-6);
        let mid = s.lr_at(50);
        assert!((mid - 0.55).abs() < 1e-6);
    }

    #[test]
    fn cosine_schedule_is_monotone_decreasing() {
        let s = CosineAnnealing::new(0.005, 0.0, 200);
        let mut prev = f32::INFINITY;
        for t in 0..=200 {
            let lr = s.lr_at(t);
            assert!(lr <= prev + 1e-9);
            prev = lr;
        }
    }

    #[test]
    fn adam_clip_norm_bounds_the_applied_update() {
        // With an enormous gradient, a clipped step moves the parameter a
        // bounded distance while an unclipped one saturates Adam's
        // normalized update. Both must stay finite.
        let run = |clip: f32| {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_vec(1, 2, vec![0.0, 0.0]));
            store
                .grad_mut(w)
                .axpy(1.0, &Tensor::from_vec(1, 2, vec![3e4, 4e4]));
            let mut opt = Adam::new(0.1).with_clip_norm(clip);
            opt.step(&mut store);
            (
                store.value(w).data().to_vec(),
                store.grad(w).data().to_vec(),
            )
        };
        let (clipped_w, clipped_g) = run(1.0);
        let (free_w, _) = run(0.0);
        // The clip rescales the stored gradient to unit global norm…
        let gnorm = clipped_g.iter().map(|g| g * g).sum::<f32>().sqrt();
        assert!((gnorm - 1.0).abs() < 1e-4, "clipped grad norm {gnorm}");
        // …and both directions still descend, finitely.
        assert!(clipped_w.iter().all(|v| v.is_finite() && *v < 0.0));
        assert!(free_w.iter().all(|v| v.is_finite()));
        // clip_norm = 0 must leave the gradient untouched.
        let (_, untouched) = run(0.0);
        assert_eq!(untouched, vec![3e4, 4e4]);
    }

    #[test]
    fn early_stopping_fires_after_patience() {
        let mut es = EarlyStopping::new(2);
        assert!(!es.update(1.0));
        assert!(!es.update(0.5));
        assert!(!es.update(0.6)); // bad 1
        assert!(!es.update(0.7)); // bad 2
        assert!(es.update(0.8)); // bad 3 > patience
        assert_eq!(es.best(), 0.5);
    }

    #[test]
    fn early_stopping_with_all_nan_history_counts_every_epoch_bad() {
        // NaN never compares better than best, so an all-NaN history burns
        // patience steadily and stops — it must never loop forever or
        // panic, and `best` stays at the +inf sentinel.
        let mut es = EarlyStopping::new(2);
        assert!(!es.update(f32::NAN));
        assert!(!es.update(f32::NAN));
        assert!(es.update(f32::NAN)); // bad 3 > patience 2
        assert_eq!(es.best(), f32::INFINITY);
    }

    #[test]
    fn early_stopping_recovers_after_a_nan_epoch() {
        // A NaN epoch is just a bad epoch; a finite improvement afterwards
        // resets the counter and becomes the new best.
        let mut es = EarlyStopping::new(3);
        assert!(!es.update(1.0));
        assert!(!es.update(f32::NAN)); // bad 1
        assert!(!es.update(0.5)); // improvement resets
        assert_eq!(es.best(), 0.5);
        assert!(!es.update(0.6)); // bad 1 again
        assert!(!es.update(0.6)); // bad 2
        assert!(!es.update(0.6)); // bad 3
        assert!(es.update(0.6)); // bad 4 > patience 3
    }

    #[test]
    fn early_stopping_single_epoch_run_never_stops_with_positive_patience() {
        let mut es = EarlyStopping::new(1);
        assert!(!es.update(0.42));
        assert_eq!(es.best(), 0.42);
    }

    #[test]
    fn early_stopping_patience_zero_stops_on_first_non_improvement() {
        let mut es = EarlyStopping::new(0);
        assert!(!es.update(1.0)); // improvement over +inf
        assert!(!es.update(0.9)); // improvement
        assert!(es.update(0.9)); // first plateau epoch stops immediately
                                 // A fresh tracker with patience 0 still survives its first epoch
                                 // when that epoch improves (i.e. any finite metric).
        let mut es2 = EarlyStopping::new(0);
        assert!(!es2.update(7.0));
        // …but a first-epoch NaN stops at once: nothing improved.
        let mut es3 = EarlyStopping::new(0);
        assert!(es3.update(f32::NAN));
    }
}
