//! Parameter storage shared by layers and optimizers.
//!
//! Parameters live outside the autograd tape so a fresh [`crate::Graph`] can
//! be built every step. Each parameter owns a persistent gradient buffer that
//! the tape accumulates into and the optimizer consumes.

use crate::tensor::Tensor;

/// Opaque identifier of a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter in its store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Flat registry of named parameter tensors and their gradients.
#[derive(Default, Clone)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.names.push(name.into());
        self.values.push(value);
        self.grads.push(Tensor::zeros(r, c));
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value of a parameter.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutable gradient buffer of a parameter.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Name given to a parameter at registration.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Ids of all parameters, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Resets every gradient buffer to zero.
    ///
    /// Writes zeros rather than scaling by `0.0` so a non-finite entry
    /// (`NaN * 0.0 == NaN`) cannot survive into the next accumulation —
    /// the watchdog's rollback recovery depends on poisoned gradients
    /// actually being discarded here.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.data_mut().fill(0.0);
        }
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.grads.iter().map(Tensor::norm_sq).sum::<f32>().sqrt()
    }

    /// Scales all gradients so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                g.scale_mut(s);
            }
        }
    }

    /// Exponential-moving-average update used by MoCo momentum encoders:
    /// `self = m * self + (1 - m) * other` (Eq. 12 of the paper).
    ///
    /// # Panics
    /// Panics if the two stores have different parameter layouts.
    pub fn momentum_update_from(&mut self, other: &ParamStore, m: f32) {
        assert_eq!(self.len(), other.len(), "parameter layout mismatch");
        for i in 0..self.values.len() {
            assert_eq!(
                self.values[i].shape(),
                other.values[i].shape(),
                "parameter {i} shape mismatch"
            );
            let dst = self.values[i].data_mut();
            let src = other.values[i].data();
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = m * *d + (1.0 - m) * s;
            }
        }
    }

    /// Copies all values from another store with the same layout.
    pub fn copy_from(&mut self, other: &ParamStore) {
        self.momentum_update_from(other, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_roundtrip() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(s.value(id).data(), &[1.0, 2.0]);
        assert_eq!(s.name(id), "w");
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_weights(), 2);
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(1, 2));
        s.grad_mut(id)
            .axpy(1.0, &Tensor::from_vec(1, 2, vec![3.0, 4.0]));
        assert_eq!(s.grad(id).data(), &[3.0, 4.0]);
        s.zero_grads();
        assert_eq!(s.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn zero_grads_discards_non_finite_poison() {
        // `scale_mut(0.0)` would keep NaN/Inf alive (NaN * 0 == NaN);
        // zeroing must actually discard them or rollback recovery loops
        // on the same poisoned buffer forever.
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(1, 3));
        s.grad_mut(id).data_mut()[0] = f32::NAN;
        s.grad_mut(id).data_mut()[1] = f32::INFINITY;
        s.zero_grads();
        assert_eq!(s.grad(id).data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn momentum_update_interpolates() {
        let mut a = ParamStore::new();
        let ia = a.add("w", Tensor::from_vec(1, 2, vec![1.0, 1.0]));
        let mut b = ParamStore::new();
        b.add("w", Tensor::from_vec(1, 2, vec![3.0, 5.0]));
        a.momentum_update_from(&b, 0.5);
        assert_eq!(a.value(ia).data(), &[2.0, 3.0]);
    }

    #[test]
    fn copy_from_duplicates_values() {
        let mut a = ParamStore::new();
        let ia = a.add("w", Tensor::zeros(1, 2));
        let mut b = ParamStore::new();
        b.add("w", Tensor::from_vec(1, 2, vec![3.0, 5.0]));
        a.copy_from(&b);
        assert_eq!(a.value(ia).data(), &[3.0, 5.0]);
    }

    #[test]
    fn clip_grad_norm_bounds_global_norm() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(1, 2));
        s.grad_mut(id)
            .axpy(1.0, &Tensor::from_vec(1, 2, vec![3.0, 4.0]));
        s.clip_grad_norm(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-5);
        assert!((s.grad(id).at(0, 0) - 0.6).abs() < 1e-5);
    }
}
