//! Dense, row-major `f32` matrices.
//!
//! Every value in the stack is a 2-D tensor; scalars are `1 x 1` and row
//! vectors are `1 x n`. The representation is a flat `Vec<f32>` plus a shape,
//! which keeps the hot loops (matmul, elementwise kernels) friendly to the
//! optimizer and avoids any dependence on external BLAS.
//!
//! The compute kernels honor the process-wide [`sarn_par`] thread count:
//! above a per-kernel work threshold the output is split into contiguous
//! row blocks computed concurrently. Every output element is written by
//! exactly one thread with the same accumulation order as the serial loop,
//! so results are bit-identical at any thread count.
//!
//! The matmul-shaped ops additionally honor the process-wide
//! [`sarn_par::ReductionOrder`] knob: `Reference` (default) keeps the
//! scalar loops below, `Fast` dispatches to the autovectorizable blocked
//! kernels in [`crate::kernels`]. See that module for the exact contract.

use std::fmt;

/// Parallelize an elementwise kernel only above this many output elements.
pub(crate) const PAR_MIN_ELEMS: usize = 32 * 1024;

/// Parallelize a matmul only above this many fused multiply-adds.
pub(crate) const PAR_MIN_FLOPS: usize = 64 * 1024;

/// Output-element threshold for a matmul with inner dimension `k`, derived
/// from [`PAR_MIN_FLOPS`].
#[inline]
pub(crate) fn par_min_out(k: usize) -> usize {
    PAR_MIN_FLOPS / k.max(1)
}

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "shape ({rows}, {cols}) does not match buffer length {}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::from_vec(rows, cols, vec![0.0; rows * cols])
    }

    /// Creates a `rows x cols` tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::from_vec(rows, cols, vec![1.0; rows * cols])
    }

    /// Creates a `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self::from_vec(rows, cols, vec![value; rows * cols])
    }

    /// Creates a `1 x 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an `n x 1` column vector from a slice.
    pub fn col(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1 x 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Matrix product `self * rhs`.
    ///
    /// In [`sarn_par::ReductionOrder::Reference`] mode (default) this is the
    /// scalar `i-k-j` loop, streaming contiguous rows of both the
    /// accumulator and `rhs`; in `Fast` mode it dispatches to the packed-B
    /// panel kernel ([`crate::kernels::matmul_fast`]).
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: ({}, {}) x ({}, {})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (n, k, m) = (self.rows, self.cols, rhs.cols);
        if sarn_par::reduction_order() == sarn_par::ReductionOrder::Fast {
            return Tensor::from_vec(
                n,
                m,
                crate::kernels::matmul_fast(&self.data, n, k, &rhs.data, m),
            );
        }
        let mut out = vec![0.0f32; n * m];
        // Row blocks of the output are independent; within a block the
        // i-k-j order is exactly the serial loop.
        sarn_par::par_chunks_mut(&mut out, m.max(1), par_min_out(k), |offset, chunk| {
            let i0 = offset / m.max(1);
            for (di, orow) in chunk.chunks_mut(m).enumerate() {
                let i = i0 + di;
                let arow = &self.data[i * k..(i + 1) * k];
                for (kk, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &rhs.data[kk * m..(kk + 1) * m];
                    for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                        *o += a * b;
                    }
                }
            }
        });
        Tensor::from_vec(n, m, out)
    }

    /// `self^T * rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}, {})^T x ({}, {})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (k, n, m) = (self.rows, self.cols, rhs.cols);
        if sarn_par::reduction_order() == sarn_par::ReductionOrder::Fast {
            return Tensor::from_vec(
                n,
                m,
                crate::kernels::t_matmul_fast(&self.data, k, n, &rhs.data, m),
            );
        }
        let mut out = vec![0.0f32; n * m];
        // Each block owns a contiguous range of output rows and scans the
        // full `kk` axis in ascending order, applying only the entries that
        // land in its range — per-element accumulation order is identical
        // to the serial kk-outer loop.
        sarn_par::par_chunks_mut(&mut out, m.max(1), par_min_out(k), |offset, chunk| {
            let (i0, i1) = (offset / m.max(1), (offset + chunk.len()) / m.max(1));
            for kk in 0..k {
                let arow = &self.data[kk * n + i0..kk * n + i1];
                let brow = &rhs.data[kk * m..(kk + 1) * m];
                for (di, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let orow = &mut chunk[di * m..(di + 1) * m];
                    for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                        *o += a * b;
                    }
                }
            }
        });
        Tensor::from_vec(n, m, out)
    }

    /// `self * rhs^T` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: ({}, {}) x ({}, {})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (n, k, m) = (self.rows, self.cols, rhs.rows);
        if sarn_par::reduction_order() == sarn_par::ReductionOrder::Fast {
            return Tensor::from_vec(
                n,
                m,
                crate::kernels::matmul_t_fast(&self.data, n, k, &rhs.data, m),
            );
        }
        let mut out = vec![0.0f32; n * m];
        sarn_par::par_chunks_mut(&mut out, m.max(1), par_min_out(k), |offset, chunk| {
            let i0 = offset / m.max(1);
            for (di, orow) in chunk.chunks_mut(m).enumerate() {
                let arow = &self.data[(i0 + di) * k..(i0 + di + 1) * k];
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &rhs.data[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&a, &b) in arow.iter().zip(brow.iter()) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        Tensor::from_vec(n, m, out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = vec![0.0f32; self.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        Tensor::from_vec(self.cols, self.rows, out)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = vec![0.0f32; self.len()];
        sarn_par::par_chunks_mut(&mut out, 1, PAR_MIN_ELEMS, |offset, chunk| {
            for (o, &v) in chunk.iter_mut().zip(&self.data[offset..]) {
                *o = f(v);
            }
        });
        Tensor::from_vec(self.rows, self.cols, out)
    }

    /// Elementwise combine with another tensor of the same shape.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        let mut out = vec![0.0f32; self.len()];
        sarn_par::par_chunks_mut(&mut out, 1, PAR_MIN_ELEMS, |offset, chunk| {
            for ((o, &a), &b) in chunk
                .iter_mut()
                .zip(&self.data[offset..])
                .zip(&other.data[offset..])
            {
                *o = f(a, b);
            }
        });
        Tensor::from_vec(self.rows, self.cols, out)
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// In-place scaling by a constant.
    pub fn scale_mut(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Squared Frobenius norm (honors the reduction-order knob).
    pub fn norm_sq(&self) -> f32 {
        crate::kernels::squared_norm(&self.data)
    }

    /// Dot product of two row slices of equal length (honors the
    /// reduction-order knob).
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        crate::kernels::dot(a, b)
    }

    /// Stacks rows gathered from `self` by index.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        let cols = self.cols;
        let mut out = vec![0.0f32; idx.len() * cols];
        sarn_par::par_chunks_mut(&mut out, cols.max(1), PAR_MIN_ELEMS, |offset, chunk| {
            let r0 = offset / cols.max(1);
            for (dr, orow) in chunk.chunks_mut(cols.max(1)).enumerate() {
                orow.copy_from_slice(self.row_slice(idx[r0 + dr]));
            }
        });
        Tensor::from_vec(idx.len(), cols, out)
    }

    /// Vertically stacks tensors with matching column counts.
    pub fn vstack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "vstack of zero tensors");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|t| t.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for t in parts {
            assert_eq!(t.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&t.data);
        }
        Tensor::from_vec(rows, cols, data)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})[", self.rows, self.cols)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.len() > 8 {
            write!(f, ", ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computed_product() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose_product() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|v| v as f32).collect());
        let expected = a.transpose().matmul(&b);
        assert_eq!(a.t_matmul(&b), expected);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose_product() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        let expected = a.matmul(&b.transpose());
        assert_eq!(a.matmul_t(&b), expected);
    }

    #[test]
    fn transpose_is_involutive() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gather_rows_picks_requested_rows() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let s = Tensor::vstack(&[&a, &b]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates_scaled_values() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let b = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions_and_scalar_access() {
        let a = Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
    }

    #[test]
    #[should_panic(expected = "shape (2, 2) does not match")]
    fn from_vec_rejects_bad_shapes() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 2);
        let _ = a.matmul(&b);
    }
}
