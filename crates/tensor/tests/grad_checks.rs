//! Finite-difference validation of every autograd op.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sarn_tensor::grad_check::assert_grad_close;
use sarn_tensor::{init, Graph, Tensor, Var};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn rng() -> StdRng {
    StdRng::seed_from_u64(42)
}

fn rand_t(rows: usize, cols: usize) -> Tensor {
    init::normal(&mut rng(), rows, cols, 1.0)
}

#[test]
fn grad_matmul_lhs_and_rhs() {
    let b = rand_t(3, 2);
    assert_grad_close(
        &rand_t(4, 3),
        |g, x| {
            let bv = g.input(b.clone());
            g.mean_all(g.matmul(x, bv))
        },
        EPS,
        TOL,
    );
    let a = rand_t(4, 3);
    assert_grad_close(
        &rand_t(3, 2),
        |g, x| {
            let av = g.input(a.clone());
            g.mean_all(g.matmul(av, x))
        },
        EPS,
        TOL,
    );
}

#[test]
fn grad_elementwise_binary() {
    let other = rand_t(3, 3);
    for op in ["add", "sub", "mul"] {
        assert_grad_close(
            &rand_t(3, 3),
            |g, x| {
                let o = g.input(other.clone());
                let y = match op {
                    "add" => g.add(x, o),
                    "sub" => g.sub(x, o),
                    _ => g.mul(x, o),
                };
                g.mean_all(g.sqr(y))
            },
            EPS,
            TOL,
        );
    }
}

#[test]
fn grad_add_row_both_sides() {
    let row = rand_t(1, 4);
    assert_grad_close(
        &rand_t(3, 4),
        |g, x| {
            let r = g.input(row.clone());
            g.mean_all(g.sqr(g.add_row(x, r)))
        },
        EPS,
        TOL,
    );
    let m = rand_t(3, 4);
    assert_grad_close(
        &rand_t(1, 4),
        |g, x| {
            let mv = g.input(m.clone());
            g.mean_all(g.sqr(g.add_row(mv, x)))
        },
        EPS,
        TOL,
    );
}

#[test]
fn grad_mul_col_both_sides() {
    let col = rand_t(3, 1);
    assert_grad_close(
        &rand_t(3, 4),
        |g, x| {
            let c = g.input(col.clone());
            g.mean_all(g.sqr(g.mul_col(x, c)))
        },
        EPS,
        TOL,
    );
    let m = rand_t(3, 4);
    assert_grad_close(
        &rand_t(3, 1),
        |g, x| {
            let mv = g.input(m.clone());
            g.mean_all(g.sqr(g.mul_col(mv, x)))
        },
        EPS,
        TOL,
    );
}

type UnaryOp = fn(&Graph, Var) -> Var;

#[test]
fn grad_unary_smooth_ops() {
    let build: Vec<(&str, UnaryOp)> = vec![
        ("scale", |g, x| g.scale(x, 2.5)),
        ("add_scalar", |g, x| g.add_scalar(x, 1.5)),
        ("neg", |g, x| g.neg(x)),
        ("exp", |g, x| g.exp(x)),
        ("sqr", |g, x| g.sqr(x)),
        ("sigmoid", |g, x| g.sigmoid(x)),
        ("tanh", |g, x| g.tanh(x)),
        ("one_minus", |g, x| g.one_minus(x)),
        ("elu", |g, x| g.elu(x, 1.0)),
    ];
    for (name, f) in build {
        assert_grad_close(&rand_t(3, 3), |g, x| g.mean_all(g.sqr(f(g, x))), EPS, TOL);
        let _ = name;
    }
}

#[test]
fn grad_ln_on_positive_input() {
    let x0 = rand_t(3, 3).map(|v| v.abs() + 1.0);
    assert_grad_close(&x0, |g, x| g.mean_all(g.ln(x)), 1e-3, TOL);
}

#[test]
fn grad_piecewise_ops_away_from_kinks() {
    // Shift values away from 0 so finite differences do not straddle a kink.
    let x0 = rand_t(3, 3).map(|v| if v.abs() < 0.2 { v + 0.5 } else { v });
    assert_grad_close(&x0, |g, x| g.mean_all(g.relu(x)), 1e-3, TOL);
    assert_grad_close(&x0, |g, x| g.mean_all(g.leaky_relu(x, 0.2)), 1e-3, TOL);
    assert_grad_close(&x0, |g, x| g.mean_all(g.abs(x)), 1e-3, TOL);
}

#[test]
fn grad_softmax_rows() {
    assert_grad_close(
        &rand_t(3, 4),
        |g, x| {
            let s = g.softmax_rows(x);
            // weight rows to create asymmetric gradient
            let w = g.input(Tensor::from_vec(
                3,
                4,
                (0..12).map(|i| i as f32 * 0.1).collect(),
            ));
            g.mean_all(g.mul(s, w))
        },
        1e-2,
        TOL,
    );
}

#[test]
fn grad_reductions_and_shape_ops() {
    assert_grad_close(&rand_t(3, 4), |g, x| g.sum_all(x), EPS, TOL);
    assert_grad_close(&rand_t(3, 4), |g, x| g.mean_all(x), EPS, TOL);
    assert_grad_close(
        &rand_t(3, 4),
        |g, x| g.mean_all(g.sqr(g.sum_rows(x))),
        EPS,
        TOL,
    );
    assert_grad_close(
        &rand_t(3, 4),
        |g, x| g.mean_all(g.sqr(g.transpose(x))),
        EPS,
        TOL,
    );
}

#[test]
fn grad_concat_ops() {
    let other = rand_t(3, 2);
    assert_grad_close(
        &rand_t(3, 4),
        |g, x| {
            let o = g.input(other.clone());
            g.mean_all(g.sqr(g.concat_cols(&[x, o])))
        },
        EPS,
        TOL,
    );
    let other2 = rand_t(2, 4);
    assert_grad_close(
        &rand_t(3, 4),
        |g, x| {
            let o = g.input(other2.clone());
            g.mean_all(g.sqr(g.concat_rows(&[x, o])))
        },
        EPS,
        TOL,
    );
}

#[test]
fn grad_gather_and_slice() {
    assert_grad_close(
        &rand_t(4, 3),
        |g, x| {
            let y = g.gather_rows(x, &[0, 2, 2, 3]);
            g.mean_all(g.sqr(y))
        },
        EPS,
        TOL,
    );
    assert_grad_close(
        &rand_t(5, 3),
        |g, x| g.mean_all(g.sqr(g.slice_rows(x, 1, 3))),
        EPS,
        TOL,
    );
}

#[test]
fn grad_segment_softmax() {
    let seg = Rc::new(vec![0usize, 0, 1, 1, 1, 2]);
    assert_grad_close(
        &rand_t(6, 1),
        |g, x| {
            let a = g.segment_softmax(x, Rc::clone(&seg), 3);
            let w = g.input(Tensor::col(&[0.1, 0.5, -0.2, 0.9, 0.3, 0.7]));
            g.sum_all(g.mul(a, w))
        },
        1e-2,
        TOL,
    );
}

#[test]
fn grad_segment_weighted_sum_alpha_and_values() {
    let seg = Rc::new(vec![0usize, 0, 1, 2, 2]);
    let values = rand_t(5, 3);
    assert_grad_close(
        &rand_t(5, 1),
        |g, x| {
            let v = g.input(values.clone());
            let out = g.segment_weighted_sum(x, v, Rc::clone(&seg), 3);
            g.mean_all(g.sqr(out))
        },
        EPS,
        TOL,
    );
    let alpha = rand_t(5, 1);
    assert_grad_close(
        &rand_t(5, 3),
        |g, x| {
            let a = g.input(alpha.clone());
            let out = g.segment_weighted_sum(a, x, Rc::clone(&seg), 3);
            g.mean_all(g.sqr(out))
        },
        EPS,
        TOL,
    );
}

#[test]
fn grad_cross_entropy() {
    assert_grad_close(
        &rand_t(4, 3),
        |g, x| g.cross_entropy(x, &[0, 2, 1, 2]),
        1e-2,
        TOL,
    );
}

#[test]
fn grad_mse() {
    let target = rand_t(3, 3);
    assert_grad_close(&rand_t(3, 3), |g, x| g.mse(x, &target), EPS, TOL);
}

#[test]
fn grad_info_nce() {
    let cands: Vec<Tensor> = (0..3).map(|_| rand_t(5, 4)).collect();
    assert_grad_close(
        &rand_t(3, 4),
        |g, x| g.info_nce(x, cands.clone(), 0.5),
        1e-2,
        TOL,
    );
}

#[test]
fn grad_info_nce_small_temperature_stays_finite() {
    let cands: Vec<Tensor> = (0..2).map(|_| rand_t(8, 4)).collect();
    let g = Graph::new();
    let z = g.leaf_grad(rand_t(2, 4));
    let loss = g.info_nce(z, cands, 0.05);
    assert!(g.value(loss).item().is_finite());
    g.backward(loss);
    assert!(g.grad(z).unwrap().all_finite());
}

#[test]
fn grad_composed_deep_chain() {
    // A deliberately deep composition exercising re-used intermediates.
    let w = rand_t(4, 4);
    assert_grad_close(
        &rand_t(3, 4),
        |g, x| {
            let wv = g.input(w.clone());
            let h1 = g.tanh(g.matmul(x, wv));
            let h2 = g.add(h1, x); // residual
            let h3 = g.sigmoid(g.mul(h2, h2));
            g.mean_all(h3)
        },
        1e-2,
        TOL,
    );
}

/// Gradient checks with the parallel backend engaged.
///
/// The inputs are sized past the backend's serial-fallback thresholds so
/// that, at 4 threads, the parallel kernels (and not the serial fallback)
/// produce both the forward values and the analytic gradients being
/// checked. Running the same checks at 1 thread pins the contract that the
/// two paths are the same function.
mod parallel {
    use super::*;
    use std::sync::Mutex;

    /// The thread-count knob is process-global; tests that flip it hold
    /// this lock and restore the serial default before releasing.
    static KNOB: Mutex<()> = Mutex::new(());

    fn with_threads(n: usize, f: impl FnOnce()) {
        let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
        sarn_par::set_num_threads(n);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        sarn_par::set_num_threads(1);
        if let Err(e) = result {
            std::panic::resume_unwind(e);
        }
    }

    /// A GAT-style aggregation over enough edges to engage the parallel
    /// segment kernels: neighbor features are gathered, attention scores
    /// softmax-normalized per destination, and messages summed per segment.
    fn gat_edges(n_edges: usize, n_nodes: usize) -> (Rc<Vec<usize>>, Vec<usize>) {
        let seg: Vec<usize> = (0..n_edges).map(|e| e * n_nodes / n_edges).collect();
        let idx: Vec<usize> = (0..n_edges).map(|e| (e * 7 + 3) % n_nodes).collect();
        (Rc::new(seg), idx)
    }

    #[test]
    fn grad_matmul_family_under_both_thread_settings() {
        // Shapes clear the 65536-flop matmul gate (out elems > 65536 / k)
        // while keeping the *perturbed* operand small, so the central-
        // difference sweep stays cheap. The backward pass runs the parallel
        // matmul_t and t_matmul kernels on the same shapes.
        let b = init::normal(&mut rng(), 32, 520, 0.3);
        let a = init::normal(&mut rng(), 520, 32, 0.3);
        for threads in [1, 4] {
            with_threads(threads, || {
                // 4x32 @ 32x520: perturb the 128-element lhs.
                assert_grad_close(
                    &init::normal(&mut rng(), 4, 32, 0.3),
                    |g, x| {
                        let bv = g.input(b.clone());
                        g.mean_all(g.sqr(g.matmul(x, bv)))
                    },
                    EPS,
                    TOL,
                );
                // 520x32 @ 32x4: perturb the 128-element rhs.
                assert_grad_close(
                    &init::normal(&mut rng(), 32, 4, 0.3),
                    |g, x| {
                        let av = g.input(a.clone());
                        g.mean_all(g.sqr(g.matmul(av, x)))
                    },
                    EPS,
                    TOL,
                );
            });
        }
    }

    #[test]
    fn grad_gat_aggregation_under_both_thread_settings() {
        // 2100 edges exceed the 2048-edge segment gate; 2100 * 16 gathered
        // elements exceed the 32768-element gather/scatter gate.
        let (seg, idx) = gat_edges(2100, 32);
        let scores = init::normal(&mut rng(), 2100, 1, 0.5);
        for threads in [1, 4] {
            let seg = Rc::clone(&seg);
            let idx = idx.clone();
            let scores = scores.clone();
            with_threads(threads, || {
                // Node features drive the loss through gather + weighted sum.
                assert_grad_close(
                    &init::normal(&mut rng(), 32, 16, 0.5),
                    |g, x| {
                        let s = g.input(scores.clone());
                        let hn = g.gather_rows(x, &idx);
                        let alpha = g.segment_softmax(s, Rc::clone(&seg), 32);
                        let msg = g.segment_weighted_sum(alpha, hn, Rc::clone(&seg), 32);
                        g.mean_all(g.sqr(msg))
                    },
                    EPS,
                    TOL,
                );
            });
        }
    }

    #[test]
    fn grad_attention_scores_under_both_thread_settings() {
        // Same aggregation, differentiated through the softmax scores; the
        // edge values are a plain input so the sweep only pays for the
        // segment kernels under test.
        let (seg, _) = gat_edges(2100, 64);
        let edge_vals = init::normal(&mut rng(), 2100, 2, 0.5);
        for threads in [1, 4] {
            let seg = Rc::clone(&seg);
            let edge_vals = edge_vals.clone();
            with_threads(threads, || {
                assert_grad_close(
                    &init::normal(&mut rng(), 2100, 1, 0.5),
                    |g, x| {
                        let v = g.input(edge_vals.clone());
                        let alpha = g.segment_softmax(x, Rc::clone(&seg), 64);
                        let msg = g.segment_weighted_sum(alpha, v, Rc::clone(&seg), 64);
                        g.mean_all(g.sqr(msg))
                    },
                    1e-2,
                    TOL,
                );
            });
        }
    }

    #[test]
    fn forward_and_backward_are_bitwise_identical_across_thread_counts() {
        // The determinism contract is stronger than the grad-check
        // tolerance: every kernel accumulates in the serial order, so the
        // values and gradients must agree exactly, not just closely.
        let (seg, idx) = gat_edges(2100, 64);
        let w = init::normal(&mut rng(), 16, 16, 0.3);
        let feats = init::normal(&mut rng(), 64, 16, 0.5);
        let scores = init::normal(&mut rng(), 2100, 1, 0.5);
        let run = |threads: usize| {
            let mut out = Vec::new();
            with_threads(threads, || {
                let g = Graph::new();
                let x = g.leaf_grad(feats.clone());
                let s = g.leaf_grad(scores.clone());
                let wv = g.input(w.clone());
                let h = g.matmul(x, wv);
                let hn = g.gather_rows(h, &idx);
                let alpha = g.segment_softmax(s, Rc::clone(&seg), 64);
                let msg = g.segment_weighted_sum(alpha, hn, Rc::clone(&seg), 64);
                let loss = g.mean_all(g.sqr(g.l2_normalize_rows(msg)));
                g.backward(loss);
                out = vec![
                    g.value(loss).clone(),
                    g.grad(x).unwrap().clone(),
                    g.grad(s).unwrap().clone(),
                ];
            });
            out
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            let par = run(threads);
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.data(), b.data(), "divergence at {threads} threads");
            }
        }
    }
}
