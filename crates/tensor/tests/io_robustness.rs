//! Reload robustness of the tensor persistence layer.
//!
//! The serving store's stale-fallback contract leans entirely on
//! `sarn_tensor::io` failing *typed* on damaged artifacts: a reload that
//! panics would take every concurrent reader down with it, and one that
//! silently returns a short tensor would publish garbage. These tests
//! attack a valid embedding artifact the way a crashed or concurrent
//! writer would — truncation at every chunk boundary of the format, a
//! sweep of interior byte offsets, and validation mismatches — and
//! require a typed [`IoError`] every time.

use proptest::prelude::*;
use sarn_tensor::io::IoError;
use sarn_tensor::{Tensor, TensorExpectation};

const ROWS: usize = 17;
const COLS: usize = 9;

/// Header layout of a `.emb` artifact: 4-byte magic, then u32 rows, u32
/// cols, then `rows * cols` little-endian f32s.
const HEADER_LEN: usize = 4 + 4 + 4;

fn artifact_bytes() -> Vec<u8> {
    let t = Tensor::from_vec(
        ROWS,
        COLS,
        (0..ROWS * COLS).map(|i| (i as f32).sin()).collect(),
    );
    let p = std::env::temp_dir().join(format!("sarn_io_rob_src_{}", std::process::id()));
    t.save(&p).expect("writing the pristine artifact");
    let bytes = std::fs::read(&p).expect("reading the pristine artifact back");
    std::fs::remove_file(&p).ok();
    assert_eq!(bytes.len(), HEADER_LEN + ROWS * COLS * 4);
    bytes
}

fn load_cut(full: &[u8], cut: usize, tag: &str) -> Result<Tensor, IoError> {
    let p = std::env::temp_dir().join(format!("sarn_io_rob_{tag}_{}_{}", std::process::id(), cut));
    std::fs::write(&p, &full[..cut]).expect("writing the truncated artifact");
    let r = Tensor::load(&p);
    std::fs::remove_file(&p).ok();
    r
}

/// Every chunk boundary of the format — after the magic, after each header
/// field, and after every 4-byte float of the payload — yields a typed
/// truncation error, never a panic and never a partial tensor.
#[test]
fn truncation_at_every_chunk_boundary_is_typed() {
    let full = artifact_bytes();
    let mut cuts: Vec<usize> = vec![0, 4, 8, HEADER_LEN];
    cuts.extend((HEADER_LEN..full.len()).step_by(4).skip(1));
    for cut in cuts {
        assert!(cut < full.len(), "cut {cut} out of range");
        match load_cut(&full, cut, "boundary") {
            Err(IoError::Truncated { .. }) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    // The untruncated file still loads — the sweep attacked real damage,
    // not a broken fixture.
    let p = std::env::temp_dir().join(format!("sarn_io_rob_full_{}", std::process::id()));
    std::fs::write(&p, &full).expect("writing the full artifact");
    let t = Tensor::load(&p).expect("pristine artifact loads");
    std::fs::remove_file(p).ok();
    assert_eq!(t.shape(), (ROWS, COLS));
}

proptest! {
    /// Truncation at arbitrary interior byte offsets — including cuts in
    /// the middle of a float — is equally typed: `Truncated` everywhere.
    #[test]
    fn truncation_at_interior_offsets_is_typed(
        cut in 0usize..(HEADER_LEN + ROWS * COLS * 4 - 1),
    ) {
        let full = artifact_bytes();
        match load_cut(&full, cut, "interior") {
            Err(IoError::Truncated { .. }) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }

    /// Flipping the magic to garbage fails as `BadMagic` no matter what
    /// trails it.
    #[test]
    fn corrupt_magic_is_bad_magic(b0 in 0u8..255, b1 in 0u8..255) {
        let mut full = artifact_bytes();
        full[0] = full[0].wrapping_add(b0).wrapping_add(1);
        full[1] ^= b1;
        let p = std::env::temp_dir().join(format!(
            "sarn_io_rob_magic_{}_{}_{}", std::process::id(), b0, b1
        ));
        std::fs::write(&p, &full).expect("writing the corrupted artifact");
        let r = Tensor::load(&p);
        std::fs::remove_file(&p).ok();
        match r {
            Err(IoError::BadMagic { expected: "SRT1" }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }
}

/// `load_validated` enforces the serving admission contract: shape pins
/// and finiteness, each failing with its own typed variant.
#[test]
fn load_validated_rejects_shape_and_finiteness_violations() {
    let t = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let p = std::env::temp_dir().join(format!("sarn_io_rob_valid_{}", std::process::id()));
    t.save(&p).expect("saving the artifact");

    // The correct expectation admits it.
    let ok = Tensor::load_validated(&p, &TensorExpectation::embedding(3, 2))
        .expect("matching expectation");
    assert_eq!(ok.shape(), (3, 2));

    // A row-count mismatch (embedding file for a different network) is
    // typed with both sides of the disagreement.
    match Tensor::load_validated(&p, &TensorExpectation::embedding(4, 2)) {
        Err(IoError::ShapeMismatch {
            expected_rows: Some(4),
            rows: 3,
            ..
        }) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    // So is a dimension mismatch (model trained with a different d).
    match Tensor::load_validated(&p, &TensorExpectation::embedding(3, 8)) {
        Err(IoError::ShapeMismatch {
            expected_cols: Some(8),
            cols: 2,
            ..
        }) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // A NaN smuggled into the payload fails finiteness with its position.
    let mut sick = t.clone();
    sick.data_mut()[3] = f32::NAN;
    sick.save(&p).expect("saving the sick artifact");
    match Tensor::load_validated(&p, &TensorExpectation::embedding(3, 2)) {
        Err(IoError::NonFinite { row: 1, col: 1, .. }) => {}
        other => panic!("expected NonFinite at (1, 1), got {other:?}"),
    }
    // Unpinned, non-finite-tolerant expectations still admit it.
    let loose = TensorExpectation::default();
    Tensor::load_validated(&p, &loose).expect("loose expectation admits NaN");
    std::fs::remove_file(p).ok();
}
