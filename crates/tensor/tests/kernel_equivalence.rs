//! Fast ↔ Reference kernel equivalence properties.
//!
//! `ReductionOrder::Fast` may re-associate sums (lane accumulators, packed
//! panels, removed zero-skips), but *every* accumulation order obeys the
//! standard summation error bound `|computed - exact| <= gamma_k * S`,
//! where `S` is the sum of the term magnitudes and `gamma_k ~= k * EPS`.
//! Two orders therefore differ by at most `~2 gamma_k S`; the assertions
//! below allow `4 k EPS S + 1e-6` (2x slack plus an absolute floor for
//! results near zero). The fused ELU-scatter and `segment_softmax` are not
//! reductions the knob re-associates, so those are held to **bitwise**
//! equality across modes.
//!
//! Shapes deliberately include 1x1, prime dimensions, sizes below / at /
//! above the `LANES` (8) and `PANEL_COLS` (16) boundaries, and the `m == 1`
//! column-vector special case; every comparison runs at 1 and 4 worker
//! threads.

use std::rc::Rc;
use std::sync::Mutex;

use proptest::prelude::*;
use sarn_par::ReductionOrder;
use sarn_tensor::{kernels, Graph, Tensor};

/// The reduction-order and thread knobs are process globals and the test
/// harness is multithreaded: every knob change in this binary happens under
/// this lock, and Reference / 1 thread is restored before release.
static KNOB: Mutex<()> = Mutex::new(());

const THREADS: [usize; 2] = [1, 4];

/// Runs `f` once in Reference and once in Fast mode at `threads` workers.
fn with_both_orders<R>(threads: usize, f: impl Fn() -> R) -> (R, R) {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    sarn_par::set_num_threads(threads);
    sarn_par::set_reduction_order(ReductionOrder::Reference);
    let reference = f();
    sarn_par::set_reduction_order(ReductionOrder::Fast);
    let fast = f();
    sarn_par::set_reduction_order(ReductionOrder::Reference);
    sarn_par::set_num_threads(1);
    (reference, fast)
}

/// The stated cross-order tolerance for a `k`-term reduction whose term
/// magnitudes sum to `term_sum` (see the module docs).
fn tol(k: usize, term_sum: f32) -> f32 {
    1e-6 + 4.0 * k as f32 * f32::EPSILON * term_sum
}

/// Element-wise `|reference - fast| <= tol(k, bound)` check; `bound` holds
/// `sum_k |a_ik| * |b_kj|` per output element.
fn assert_within_bound(
    reference: &Tensor,
    fast: &Tensor,
    bound: &Tensor,
    k: usize,
    what: &str,
) -> Result<(), String> {
    for ((x, y), s) in reference.data().iter().zip(fast.data()).zip(bound.data()) {
        prop_assert!(
            (x - y).abs() <= tol(k, *s),
            "{what}: reference {x} vs fast {y} exceeds tol {}",
            tol(k, *s)
        );
    }
    Ok(())
}

/// `(n, k, m)` triples: 1x1, primes, below/at/above lane and panel widths,
/// and the `m == 1` dot-product special case.
const SHAPES: [(usize, usize, usize); 7] = [
    (1, 1, 1),
    (2, 3, 1),
    (3, 7, 5),
    (5, 8, 16),
    (4, 9, 17),
    (7, 31, 19),
    (1, 97, 3),
];

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

/// `(k, A, B)` with `A: n x k`, `B: shaped by `to_shapes` from `(n, k, m)`.
fn mat_pair(
    to_a: fn((usize, usize, usize)) -> (usize, usize),
    to_b: fn((usize, usize, usize)) -> (usize, usize),
) -> impl Strategy<Value = (usize, Tensor, Tensor)> {
    (0usize..SHAPES.len()).prop_flat_map(move |i| {
        let shape = SHAPES[i];
        let (ar, ac) = to_a(shape);
        let (br, bc) = to_b(shape);
        (
            Just(shape.1),
            tensor_strategy(ar, ac),
            tensor_strategy(br, bc),
        )
    })
}

proptest! {
    #[test]
    fn fast_matmul_stays_within_the_summation_bound(
        (k, a, b) in mat_pair(|(n, k, _)| (n, k), |(_, k, m)| (k, m)),
    ) {
        for &t in &THREADS {
            let ((r, bound), (f, _)) = with_both_orders(t, || {
                (a.matmul(&b), a.map(f32::abs).matmul(&b.map(f32::abs)))
            });
            assert_within_bound(&r, &f, &bound, k, "matmul")?;
        }
    }

    #[test]
    fn fast_matmul_t_stays_within_the_summation_bound(
        (k, a, b) in mat_pair(|(n, k, _)| (n, k), |(_, k, m)| (m, k)),
    ) {
        for &t in &THREADS {
            let ((r, bound), (f, _)) = with_both_orders(t, || {
                (a.matmul_t(&b), a.map(f32::abs).matmul_t(&b.map(f32::abs)))
            });
            assert_within_bound(&r, &f, &bound, k, "matmul_t")?;
        }
    }

    #[test]
    fn fast_t_matmul_stays_within_the_summation_bound(
        (k, a, b) in mat_pair(|(n, k, _)| (k, n), |(_, k, m)| (k, m)),
    ) {
        for &t in &THREADS {
            let ((r, bound), (f, _)) = with_both_orders(t, || {
                (a.t_matmul(&b), a.map(f32::abs).t_matmul(&b.map(f32::abs)))
            });
            assert_within_bound(&r, &f, &bound, k, "t_matmul")?;
        }
    }

    #[test]
    fn shared_cosine_kernel_stays_within_the_summation_bound(
        (len, a, b) in (0usize..6).prop_flat_map(|i| {
            let len = [1usize, 7, 8, 9, 31, 97][i];
            (
                Just(len),
                proptest::collection::vec(-10.0f32..10.0, len),
                proptest::collection::vec(-10.0f32..10.0, len),
            )
        }),
    ) {
        for &t in &THREADS {
            let (r, f) = with_both_orders(t, || kernels::cosine(&a, &b));
            // |a . b| <= ||a|| ||b|| (Cauchy-Schwarz), so the cosine's
            // cross-order error is bounded by ~3 gamma_k on its own.
            let tol = 1e-7 + 8.0 * len as f32 * f32::EPSILON;
            prop_assert!(
                (r - f).abs() <= tol,
                "cosine: reference {r} vs fast {f} exceeds tol {tol}"
            );
        }
    }

    #[test]
    fn fused_elu_scatter_is_bitwise_identical_to_unfused_in_both_modes(
        (alpha, values, seg, nseg) in (1usize..40, 0usize..3).prop_flat_map(|(e, di)| {
            let d = [1usize, 3, 9][di];
            let nseg = 5usize;
            (
                tensor_strategy(e, 1),
                tensor_strategy(e, d),
                proptest::collection::vec(0usize..nseg, e),
                Just(nseg),
            )
        }),
    ) {
        let seg = Rc::new(seg);
        // (output, d(alpha), d(values)) for the fused / unfused graphs.
        let run = |fused: bool| -> (Tensor, Tensor, Tensor) {
            let g = Graph::new();
            let a = g.leaf_grad(alpha.clone());
            let v = g.leaf_grad(values.clone());
            let y = if fused {
                g.segment_weighted_sum_elu(a, v, Rc::clone(&seg), nseg, 1.0)
            } else {
                let s = g.segment_weighted_sum(a, v, Rc::clone(&seg), nseg);
                g.elu(s, 1.0)
            };
            let loss = g.sum_all(y);
            g.backward(loss);
            (
                g.value(y),
                g.grad(a).expect("alpha grad"),
                g.grad(v).expect("values grad"),
            )
        };
        for &t in &THREADS {
            let ((ref_fused, ref_unfused), (fast_fused, fast_unfused)) =
                with_both_orders(t, || (run(true), run(false)));
            // Fused must match unfused bitwise within each mode — output
            // and both gradients.
            for (f, u) in [(&ref_fused, &ref_unfused), (&fast_fused, &fast_unfused)] {
                prop_assert_eq!(f.0.data(), u.0.data());
                prop_assert_eq!(f.1.data(), u.1.data());
                prop_assert_eq!(f.2.data(), u.2.data());
            }
        }
    }

    #[test]
    fn segment_softmax_is_bitwise_identical_across_modes(
        (scores, seg, nseg) in (1usize..40).prop_flat_map(|e| {
            let nseg = 5usize;
            (
                tensor_strategy(e, 1),
                proptest::collection::vec(0usize..nseg, e),
                Just(nseg),
            )
        }),
    ) {
        let seg = Rc::new(seg);
        for &t in &THREADS {
            let (r, f) = with_both_orders(t, || {
                let g = Graph::new();
                let s = g.input(scores.clone());
                g.value(g.segment_softmax(s, Rc::clone(&seg), nseg))
            });
            // The knob only re-associates dot-shaped reductions; the
            // grouped softmax must not move at all.
            prop_assert_eq!(r.data(), f.data());
        }
    }
}
