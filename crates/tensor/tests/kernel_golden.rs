//! Golden-value tests pinning the Fast kernels' packed-B panel layout and
//! block/tile boundary handling.
//!
//! Every fixture uses small integers, which f32 represents exactly and —
//! as long as intermediate sums stay below 2^24 — adds exactly in *any*
//! association. Re-association therefore cannot move these results, so the
//! expected values are asserted bitwise: a failure means the layout or the
//! boundary handling changed, not that rounding drifted.

use sarn_tensor::kernels::{
    self, matmul_fast, matmul_fast_blocked, matmul_t_fast, pack_b_panels, t_matmul_fast, BLOCK_K,
    LANES, PANEL_COLS,
};

/// Row-major 3x5 B used by the packing and matmul fixtures:
/// ```text
///  1  2  3  4  5
///  6  7  8  9 10
/// 11 12 13 14 15
/// ```
fn b_3x5() -> Vec<f32> {
    (1..=15).map(|v| v as f32).collect()
}

#[test]
fn packed_b_panel_layout_is_pinned() {
    // panel_cols = 2 over m = 5 gives panels of columns {0,1}, {2,3}, {4}:
    // each panel stores its k=3 rows contiguously, and panel p starts at
    // flat offset p * panel_cols * k.
    let packed = pack_b_panels(&b_3x5(), 3, 5, 2);
    assert_eq!(
        packed,
        vec![
            1.0, 2.0, 6.0, 7.0, 11.0, 12.0, // panel 0: columns 0..2
            3.0, 4.0, 8.0, 9.0, 13.0, 14.0, // panel 1: columns 2..4
            5.0, 10.0, 15.0, // panel 2: the partial last panel, column 4
        ]
    );
    // Full-width "panels": packing degenerates to the identity copy.
    assert_eq!(pack_b_panels(&b_3x5(), 3, 5, 5), b_3x5());
}

#[test]
fn blocked_matmul_handles_partial_tiles_exactly() {
    // 2x3 * 3x5 with panel_cols = 2 (last panel 1 wide) and block_k = 2
    // (last k-block 1 deep): every blocking dimension ends on a partial
    // tile. Hand-computed product of A = [[1,2,3],[4,5,6]] and `b_3x5`.
    let a: Vec<f32> = (1..=6).map(|v| v as f32).collect();
    let expected = vec![
        46.0, 52.0, 58.0, 64.0, 70.0, // row 0
        100.0, 115.0, 130.0, 145.0, 160.0, // row 1
    ];
    assert_eq!(matmul_fast_blocked(&a, 2, 3, &b_3x5(), 5, 2, 2), expected);
    // The same product under the default blocking (shape far smaller than
    // one panel/block) must land on the same integers.
    assert_eq!(matmul_fast(&a, 2, 3, &b_3x5(), 5), expected);
}

#[test]
fn column_vector_rhs_takes_the_exact_dot_path() {
    // m == 1 bypasses the panel machinery for a lane-accumulator dot per
    // output row.
    let a: Vec<f32> = (1..=6).map(|v| v as f32).collect();
    let b = vec![1.0, 2.0, 3.0];
    assert_eq!(matmul_fast(&a, 2, 3, &b, 1), vec![14.0, 32.0]);
}

#[test]
fn transpose_kernels_match_hand_computed_fixtures() {
    // A (2x3) = [[1,2,3],[4,5,6]] times B^T with B (2x3) = [[1,0,2],[3,1,0]].
    let a: Vec<f32> = (1..=6).map(|v| v as f32).collect();
    let b = vec![1.0, 0.0, 2.0, 3.0, 1.0, 0.0];
    assert_eq!(matmul_t_fast(&a, 2, 3, &b, 2), vec![7.0, 5.0, 16.0, 17.0]);
    // A^T with A (2x3) as above, times C (2x2) = [[1,2],[3,4]].
    let c = vec![1.0, 2.0, 3.0, 4.0];
    assert_eq!(
        t_matmul_fast(&a, 2, 3, &c, 2),
        vec![13.0, 18.0, 17.0, 24.0, 21.0, 30.0]
    );
}

#[test]
fn blocked_matmul_crosses_every_boundary_exactly() {
    // Integer matrices sized to cross the panel boundary (m = 19 > 16),
    // a deliberately tiny k-block (block_k = 4 over k = 11), and enough
    // rows to split across parallel chunks. Integer arithmetic makes the
    // scalar model below exact, so the comparison is bitwise.
    let (n, k, m) = (5usize, 11usize, 19usize);
    let a: Vec<f32> = (0..n * k).map(|i| ((i * 7 % 23) as f32) - 11.0).collect();
    let b: Vec<f32> = (0..k * m).map(|i| ((i * 5 % 17) as f32) - 8.0).collect();
    let mut expected = vec![0.0f32; n * m];
    for i in 0..n {
        for j in 0..m {
            let mut acc = 0i64;
            for kk in 0..k {
                acc += (a[i * k + kk] as i64) * (b[kk * m + j] as i64);
            }
            expected[i * m + j] = acc as f32;
        }
    }
    assert_eq!(
        matmul_fast_blocked(&a, n, k, &b, m, PANEL_COLS, 4),
        expected
    );
    assert_eq!(matmul_fast(&a, n, k, &b, m), expected);
    assert_eq!(
        matmul_fast_blocked(&a, n, k, &b, m, 3, 2),
        expected,
        "odd panel/block sizes must hit the same integers"
    );
}

#[test]
fn degenerate_shapes_produce_empty_or_zero_outputs() {
    assert!(matmul_fast(&[], 0, 3, &b_3x5(), 5).is_empty());
    assert!(matmul_t_fast(&[], 0, 4, &[1.0; 8], 2).is_empty());
    assert!(t_matmul_fast(&[], 0, 0, &[], 3).is_empty());
    // k = 0: well-formed all-zero output.
    assert_eq!(matmul_fast(&[], 2, 0, &[], 3), vec![0.0; 6]);
}

#[test]
fn default_blocking_constants_are_pinned() {
    // DESIGN.md §12 documents this exact scheme; the equivalence suite's
    // shape lists straddle these widths. Changing any of them is a
    // documented-contract change, not a tuning tweak.
    assert_eq!(LANES, 8, "one 256-bit f32 vector");
    assert_eq!(PANEL_COLS, 16, "two vectors in flight per k-step");
    assert_eq!(BLOCK_K, 512, "32 KiB L1-resident panel slab");
    assert_eq!(PANEL_COLS % LANES, 0);
    assert_eq!(BLOCK_K * PANEL_COLS * std::mem::size_of::<f32>(), 32 * 1024);
    // The fused-ELU expression the scatter shares with the map-based op.
    assert_eq!(kernels::elu(2.5, 1.0), 2.5);
    assert_eq!(kernels::elu(0.0, 1.0), 0.0);
    assert!((kernels::elu(-1.0, 1.0) - (1.0f32.exp().recip() - 1.0)).abs() < 1e-7);
}
