//! Parameter-space gradient checks for whole layers: the analytic gradient
//! accumulated into the `ParamStore` must match central differences of the
//! loss with respect to every weight.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sarn_tensor::layers::{Activation, EdgeIndex, Ffn, GatLayer, Gru, Linear};
use sarn_tensor::{init, Graph, ParamStore, Tensor};

/// Checks every parameter of `store` against finite differences of
/// `loss_of(store)`.
fn check_param_grads(
    store: &mut ParamStore,
    loss_of: &dyn Fn(&ParamStore) -> (f32, Option<ParamStore>),
    eps: f32,
    tol: f32,
) {
    // Analytic pass (the closure returns the store with accumulated grads).
    let (_, grads) = loss_of(store);
    let grads = grads.expect("analytic pass must return gradients");
    for id in store.ids().collect::<Vec<_>>() {
        for k in 0..store.value(id).len() {
            let orig = store.value(id).data()[k];
            store.value_mut(id).data_mut()[k] = orig + eps;
            let (up, _) = loss_of(store);
            store.value_mut(id).data_mut()[k] = orig - eps;
            let (down, _) = loss_of(store);
            store.value_mut(id).data_mut()[k] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grads.grad(id).data()[k];
            assert!(
                (numeric - analytic).abs() < tol,
                "param {} [{k}]: numeric {numeric} vs analytic {analytic}",
                store.name(id),
            );
        }
    }
}

#[test]
fn linear_layer_param_grads_match_finite_differences() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let layer = Linear::new(&mut store, &mut rng, "l", 3, 2, true);
    let x = init::normal(&mut rng, 4, 3, 1.0);
    let loss_of = move |s: &ParamStore| -> (f32, Option<ParamStore>) {
        let g = Graph::new();
        let xin = g.input(x.clone());
        let y = layer.forward(&g, s, xin);
        let loss = g.mean_all(g.sqr(y));
        let v = g.value(loss).item();
        g.backward(loss);
        let mut sc = s.clone();
        sc.zero_grads();
        g.accumulate_grads(&mut sc);
        (v, Some(sc))
    };
    check_param_grads(&mut store, &loss_of, 1e-2, 2e-2);
}

#[test]
fn ffn_param_grads_match_finite_differences() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let net = Ffn::new(&mut store, &mut rng, "f", &[3, 4, 2], Activation::Tanh);
    let x = init::normal(&mut rng, 3, 3, 1.0);
    let target = init::normal(&mut rng, 3, 2, 1.0);
    let loss_of = move |s: &ParamStore| -> (f32, Option<ParamStore>) {
        let g = Graph::new();
        let xin = g.input(x.clone());
        let y = net.forward(&g, s, xin);
        let loss = g.mse(y, &target);
        let v = g.value(loss).item();
        g.backward(loss);
        let mut sc = s.clone();
        sc.zero_grads();
        g.accumulate_grads(&mut sc);
        (v, Some(sc))
    };
    check_param_grads(&mut store, &loss_of, 1e-2, 2e-2);
}

#[test]
fn gat_layer_param_grads_match_finite_differences() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let layer = GatLayer::new(&mut store, &mut rng, "g", 3, 3, 2, true);
    let x = init::normal(&mut rng, 5, 3, 1.0);
    let edges = EdgeIndex::with_self_loops(5, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2)]);
    let loss_of = move |s: &ParamStore| -> (f32, Option<ParamStore>) {
        let g = Graph::new();
        let xin = g.input(x.clone());
        let y = layer.forward(&g, s, xin, &edges);
        let loss = g.mean_all(g.sqr(y));
        let v = g.value(loss).item();
        g.backward(loss);
        let mut sc = s.clone();
        sc.zero_grads();
        g.accumulate_grads(&mut sc);
        (v, Some(sc))
    };
    check_param_grads(&mut store, &loss_of, 1e-2, 3e-2);
}

#[test]
fn gru_param_grads_match_finite_differences() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(4);
    let gru = Gru::new(&mut store, &mut rng, "r", 2, 3);
    let xs: Vec<Tensor> = (0..3).map(|_| init::normal(&mut rng, 2, 2, 1.0)).collect();
    let loss_of = move |s: &ParamStore| -> (f32, Option<ParamStore>) {
        let g = Graph::new();
        let vars: Vec<_> = xs.iter().map(|x| g.input(x.clone())).collect();
        let h = gru.run(&g, s, &vars, None);
        let loss = g.mean_all(g.sqr(h));
        let v = g.value(loss).item();
        g.backward(loss);
        let mut sc = s.clone();
        sc.zero_grads();
        g.accumulate_grads(&mut sc);
        (v, Some(sc))
    };
    check_param_grads(&mut store, &loss_of, 1e-2, 3e-2);
}
