//! Property-based tests on tensor algebra and autograd invariants.

use proptest::prelude::*;
use sarn_tensor::{Graph, Tensor};

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(3, 4),
        c in tensor_strategy(4, 2),
    ) {
        let lhs = a.zip(&b, |x, y| x + y).matmul(&c);
        let rhs = {
            let mut s = a.matmul(&c);
            s.axpy(1.0, &b.matmul(&c));
            s
        };
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn transpose_swaps_matmul_order(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
    ) {
        // (A B)^T = B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn softmax_rows_are_probability_vectors(m in tensor_strategy(4, 6)) {
        let g = Graph::new();
        let x = g.input(m);
        let s = g.value(g.softmax_rows(x));
        for r in 0..s.rows() {
            let row = s.row_slice(r);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn gather_then_sum_matches_index_counts(m in tensor_strategy(5, 3), idx in proptest::collection::vec(0usize..5, 1..10)) {
        let gathered = m.gather_rows(&idx);
        prop_assert_eq!(gathered.rows(), idx.len());
        for (e, &i) in idx.iter().enumerate() {
            prop_assert_eq!(gathered.row_slice(e), m.row_slice(i));
        }
    }

    #[test]
    fn backward_of_linear_matches_input(
        a in tensor_strategy(3, 3),
    ) {
        // d/dx sum(x * a) = a
        let g = Graph::new();
        let x = g.leaf_grad(Tensor::ones(3, 3));
        let av = g.input(a.clone());
        let loss = g.sum_all(g.mul(x, av));
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        for (gv, av) in grad.data().iter().zip(a.data().iter()) {
            prop_assert!((gv - av).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative(
        logits in tensor_strategy(4, 3),
        labels in proptest::collection::vec(0usize..3, 4),
    ) {
        let g = Graph::new();
        let l = g.input(logits);
        let loss = g.value(g.cross_entropy(l, &labels)).item();
        prop_assert!(loss >= -1e-5);
        prop_assert!(loss.is_finite());
    }

    #[test]
    fn info_nce_decreases_when_positive_aligns(
        z in tensor_strategy(1, 4),
    ) {
        // Candidates: positive equal to z (scaled), negatives orthogonal-ish.
        let g = Graph::new();
        let zn = z.clone();
        let mut aligned = vec![0.0; 4];
        aligned.copy_from_slice(zn.row_slice(0));
        let pos = Tensor::from_vec(1, 4, aligned);
        let neg = pos.map(|v| -v);
        let cands_good = Tensor::vstack(&[&pos, &neg]);
        let cands_bad = Tensor::vstack(&[&neg, &pos]);
        let zv = g.input(z);
        let good = g.value(g.info_nce(zv, vec![cands_good], 1.0)).item();
        let bad = g.value(g.info_nce(zv, vec![cands_bad], 1.0)).item();
        prop_assert!(good <= bad + 1e-5);
    }
}
