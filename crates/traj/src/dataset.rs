//! Trajectory datasets: generation + matching + splits in one call.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sarn_geo::{LocalProjection, Point};
use sarn_roadnet::RoadNetwork;

use crate::distance::discrete_frechet;
use crate::generate::TrajGenConfig;
use crate::matching::{MapMatcher, MatchedTrajectory};

/// A ready-to-use trajectory dataset over a road network: matched segment
/// sequences truncated to a maximum length, mirroring the paper's
/// preprocessing (10k sampled traces, map-matched, truncated to 60 segments).
#[derive(Clone, Debug)]
pub struct TrajDataset {
    /// Matched, truncated trajectories.
    pub trajectories: Vec<MatchedTrajectory>,
    /// Maximum segments per trajectory used at construction.
    pub max_segments: usize,
}

impl TrajDataset {
    /// Generates traces, map-matches them, truncates to `max_segments`, and
    /// drops degenerate (shorter than 3 segments) results.
    pub fn build(net: &RoadNetwork, gen: &TrajGenConfig, max_segments: usize) -> Self {
        let matcher = MapMatcher::new(net);
        let trajectories = gen
            .generate(net)
            .iter()
            .map(|t| matcher.match_trace(&t.points).truncated(max_segments))
            .filter(|m| m.len() >= 3)
            .collect();
        Self {
            trajectories,
            max_segments,
        }
    }

    /// Number of trajectories.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// True when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Pairwise Fréchet ground-truth distances between trajectories at the
    /// given indices (symmetric matrix, row-major `idx.len()^2`).
    pub fn frechet_matrix(&self, net: &RoadNetwork, idx: &[usize]) -> Vec<f64> {
        let proj = LocalProjection::new(Point::new(net.bbox().min_lat, net.bbox().min_lon));
        let polylines: Vec<Vec<Point>> = idx
            .iter()
            .map(|&i| self.trajectories[i].midpoints(net))
            .collect();
        let m = idx.len();
        let mut out = vec![0.0; m * m];
        for i in 0..m {
            for j in (i + 1)..m {
                let d = discrete_frechet(&polylines[i], &polylines[j], &proj);
                out[i * m + j] = d;
                out[j * m + i] = d;
            }
        }
        out
    }
}

/// Shuffled 6:2:2 train/validation/test index split (the paper's split).
pub fn split_indices(n: usize, seed: u64) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let train_end = n * 6 / 10;
    let val_end = n * 8 / 10;
    (
        idx[..train_end].to_vec(),
        idx[train_end..val_end].to_vec(),
        idx[val_end..].to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};

    #[test]
    fn build_produces_truncated_matched_trajectories() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.5).generate();
        let gen = TrajGenConfig {
            count: 12,
            ..Default::default()
        };
        let ds = TrajDataset::build(&net, &gen, 20);
        assert!(ds.len() >= 10, "only {} trajectories", ds.len());
        assert!(ds
            .trajectories
            .iter()
            .all(|t| t.len() <= 20 && t.len() >= 3));
    }

    #[test]
    fn frechet_matrix_is_symmetric_with_zero_diagonal() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.5).generate();
        let gen = TrajGenConfig {
            count: 8,
            ..Default::default()
        };
        let ds = TrajDataset::build(&net, &gen, 30);
        let idx: Vec<usize> = (0..ds.len().min(5)).collect();
        let m = ds.frechet_matrix(&net, &idx);
        let k = idx.len();
        for i in 0..k {
            assert_eq!(m[i * k + i], 0.0);
            for j in 0..k {
                assert_eq!(m[i * k + j], m[j * k + i]);
            }
        }
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let (tr, va, te) = split_indices(100, 5);
        assert_eq!(tr.len(), 60);
        assert_eq!(va.len(), 20);
        assert_eq!(te.len(), 20);
        let mut all: Vec<usize> = tr.iter().chain(&va).chain(&te).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        assert_eq!(split_indices(50, 1), split_indices(50, 1));
        assert_ne!(split_indices(50, 1).0, split_indices(50, 2).0);
    }
}
