//! Trajectory distance measures.

use sarn_geo::{LocalProjection, Point};

/// Discrete Fréchet distance between two point sequences, in meters
/// (Alt & Godau, 1995 — the paper's trajectory-similarity ground truth).
///
/// # Panics
/// Panics if either sequence is empty.
pub fn discrete_frechet(a: &[Point], b: &[Point], proj: &LocalProjection) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "empty trajectory");
    let (n, m) = (a.len(), b.len());
    let ap: Vec<(f64, f64)> = a.iter().map(|p| proj.project(p)).collect();
    let bp: Vec<(f64, f64)> = b.iter().map(|p| proj.project(p)).collect();
    let d = |i: usize, j: usize| -> f64 {
        let (ax, ay) = ap[i];
        let (bx, by) = bp[j];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    };
    // Rolling 1-D DP over the coupling matrix.
    let mut prev = vec![0.0f64; m];
    let mut cur = vec![0.0f64; m];
    prev[0] = d(0, 0);
    for j in 1..m {
        prev[j] = prev[j - 1].max(d(0, j));
    }
    for i in 1..n {
        cur[0] = prev[0].max(d(i, 0));
        for j in 1..m {
            let reach = prev[j].min(prev[j - 1]).min(cur[j - 1]);
            cur[j] = reach.max(d(i, j));
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m - 1]
}

/// Dynamic time warping distance between two point sequences, in meters.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn dtw(a: &[Point], b: &[Point], proj: &LocalProjection) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "empty trajectory");
    let (n, m) = (a.len(), b.len());
    let ap: Vec<(f64, f64)> = a.iter().map(|p| proj.project(p)).collect();
    let bp: Vec<(f64, f64)> = b.iter().map(|p| proj.project(p)).collect();
    let d = |i: usize, j: usize| -> f64 {
        let (ax, ay) = ap[i];
        let (bx, by) = bp[j];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    };
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 0..n {
        cur[0] = f64::INFINITY;
        for j in 0..m {
            let best = prev[j].min(prev[j + 1]).min(cur[j]);
            cur[j + 1] = d(i, j) + best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj() -> LocalProjection {
        LocalProjection::new(Point::new(30.0, 104.0))
    }

    fn line(offsets_m: &[(f64, f64)]) -> Vec<Point> {
        let p = proj();
        offsets_m.iter().map(|&(x, y)| p.unproject(x, y)).collect()
    }

    #[test]
    fn frechet_of_identical_is_zero() {
        let a = line(&[(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)]);
        assert!(discrete_frechet(&a, &a, &proj()) < 1e-6);
    }

    #[test]
    fn frechet_of_parallel_lines_is_offset() {
        let a = line(&[(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)]);
        let b = line(&[(0.0, 50.0), (100.0, 50.0), (200.0, 50.0)]);
        let d = discrete_frechet(&a, &b, &proj());
        assert!((d - 50.0).abs() < 0.5, "got {d}");
    }

    #[test]
    fn frechet_is_symmetric() {
        let a = line(&[(0.0, 0.0), (100.0, 20.0), (150.0, 80.0)]);
        let b = line(&[(10.0, 5.0), (90.0, 40.0)]);
        let p = proj();
        let d1 = discrete_frechet(&a, &b, &p);
        let d2 = discrete_frechet(&b, &a, &p);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn frechet_dominates_endpoint_distance() {
        // Fréchet >= distance between endpoints of the coupling.
        let a = line(&[(0.0, 0.0), (100.0, 0.0)]);
        let b = line(&[(0.0, 0.0), (100.0, 300.0)]);
        let d = discrete_frechet(&a, &b, &proj());
        assert!(d >= 299.0, "got {d}");
    }

    #[test]
    fn dtw_zero_on_identical_and_positive_otherwise() {
        let a = line(&[(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)]);
        let b = line(&[(0.0, 30.0), (100.0, 30.0), (200.0, 30.0)]);
        let p = proj();
        assert!(dtw(&a, &a, &p) < 1e-6);
        let d = dtw(&a, &b, &p);
        assert!((d - 90.0).abs() < 1.0, "got {d}");
    }

    #[test]
    fn dtw_handles_different_lengths() {
        let a = line(&[(0.0, 0.0), (50.0, 0.0), (100.0, 0.0), (150.0, 0.0)]);
        let b = line(&[(0.0, 0.0), (150.0, 0.0)]);
        let d = dtw(&a, &b, &proj());
        assert!(d < 200.0);
    }
}
