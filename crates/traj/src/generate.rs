//! Synthetic GPS trace generation.
//!
//! Routes are shortest paths between random origin/destination segments;
//! GPS points are emitted along the route geometry at a fixed spacing with
//! Gaussian noise, mimicking vehicle traces like DiDi / T-Drive / SF-Cab
//! after the paper's preprocessing (split on gaps, clipped to the region).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sarn_geo::{LocalProjection, Point};
use sarn_graph::dijkstra_path;
use sarn_roadnet::RoadNetwork;

/// A raw GPS trace plus the ground-truth route it was generated from.
#[derive(Clone, Debug)]
pub struct GpsTrace {
    /// Noisy GPS points.
    pub points: Vec<Point>,
    /// The route (segment ids) the vehicle actually drove.
    pub true_route: Vec<usize>,
}

/// Configuration of the trace generator.
#[derive(Clone, Debug)]
pub struct TrajGenConfig {
    /// Number of traces to generate.
    pub count: usize,
    /// Minimum route length in segments (before truncation).
    pub min_segments: usize,
    /// Maximum route length in segments (routes are truncated to this).
    pub max_segments: usize,
    /// GPS noise standard deviation in meters.
    pub noise_std_m: f64,
    /// Approximate spacing between emitted GPS points in meters.
    pub sample_every_m: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrajGenConfig {
    fn default() -> Self {
        Self {
            count: 200,
            min_segments: 10,
            max_segments: 60,
            noise_std_m: 15.0,
            sample_every_m: 80.0,
            seed: 7,
        }
    }
}

impl TrajGenConfig {
    /// Generates GPS traces over `net`. Unreachable origin/destination pairs
    /// are resampled, so the output always holds `count` traces (unless the
    /// network is pathologically disconnected, in which case fewer are
    /// returned after a bounded number of attempts).
    pub fn generate(&self, net: &RoadNetwork) -> Vec<GpsTrace> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let routing = net.routing_digraph();
        let n = net.num_segments();
        let proj = LocalProjection::new(Point::new(net.bbox().min_lat, net.bbox().min_lon));
        let mut traces = Vec::with_capacity(self.count);
        let mut attempts = 0usize;
        let max_attempts = self.count * 50;
        while traces.len() < self.count && attempts < max_attempts {
            attempts += 1;
            let src = rng.gen_range(0..n);
            let dst = rng.gen_range(0..n);
            if src == dst {
                continue;
            }
            let Some((_, route)) = dijkstra_path(&routing, src, dst) else {
                continue;
            };
            if route.len() < self.min_segments {
                continue;
            }
            let route: Vec<usize> = route.into_iter().take(self.max_segments).collect();
            let points = self.emit_points(net, &route, &proj, &mut rng);
            if points.len() >= 2 {
                traces.push(GpsTrace {
                    points,
                    true_route: route,
                });
            }
        }
        traces
    }

    /// Walks the route geometry and emits noisy GPS points.
    fn emit_points(
        &self,
        net: &RoadNetwork,
        route: &[usize],
        proj: &LocalProjection,
        rng: &mut StdRng,
    ) -> Vec<Point> {
        let mut points = Vec::new();
        let mut carried = 0.0f64;
        for &sid in route {
            let seg = net.segment(sid);
            let (sx, sy) = proj.project(&seg.start);
            let (ex, ey) = proj.project(&seg.end);
            let len = seg.length_m.max(1e-6);
            let mut pos = carried;
            while pos < len {
                let t = pos / len;
                let x = sx + (ex - sx) * t + gaussian(rng) * self.noise_std_m;
                let y = sy + (ey - sy) * t + gaussian(rng) * self.noise_std_m;
                points.push(proj.unproject(x, y));
                pos += self.sample_every_m;
            }
            carried = pos - len;
        }
        points
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};

    fn small_net() -> RoadNetwork {
        SynthConfig::city(City::Chengdu).scaled(0.5).generate()
    }

    #[test]
    fn generates_requested_count() {
        let net = small_net();
        let cfg = TrajGenConfig {
            count: 20,
            ..Default::default()
        };
        let traces = cfg.generate(&net);
        assert_eq!(traces.len(), 20);
    }

    #[test]
    fn routes_respect_length_bounds() {
        let net = small_net();
        let cfg = TrajGenConfig {
            count: 15,
            min_segments: 8,
            max_segments: 30,
            ..Default::default()
        };
        for t in cfg.generate(&net) {
            assert!(t.true_route.len() >= 8 && t.true_route.len() <= 30);
        }
    }

    #[test]
    fn routes_follow_topology() {
        let net = small_net();
        let g = net.topo_digraph();
        let cfg = TrajGenConfig {
            count: 10,
            ..Default::default()
        };
        for t in cfg.generate(&net) {
            for w in t.true_route.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "route jumps {} -> {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn gps_points_stay_near_route() {
        let net = small_net();
        let cfg = TrajGenConfig {
            count: 5,
            noise_std_m: 10.0,
            ..Default::default()
        };
        let proj = LocalProjection::new(Point::new(net.bbox().min_lat, net.bbox().min_lon));
        for t in cfg.generate(&net) {
            for p in &t.points {
                let min_d = t
                    .true_route
                    .iter()
                    .map(|&sid| proj.distance_m(p, &net.segment(sid).midpoint()))
                    .fold(f64::INFINITY, f64::min);
                assert!(min_d < 150.0, "point {min_d} m from route");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let net = small_net();
        let cfg = TrajGenConfig {
            count: 5,
            ..Default::default()
        };
        let a = cfg.generate(&net);
        let b = cfg.generate(&net);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.true_route, y.true_route);
        }
    }
}
