//! # sarn-traj
//!
//! Trajectory substrate for the SARN reproduction: synthetic GPS traces
//! generated from shortest-path routes over a [`sarn_roadnet::RoadNetwork`]
//! (the paper's DiDi/T-Drive/SF-Cab datasets are not redistributable; see
//! DESIGN.md), a nearest-segment map matcher, and the discrete Fréchet and
//! DTW distances used as trajectory-similarity ground truth.

#![warn(missing_docs)]

mod dataset;
mod distance;
mod generate;
mod matching;

pub use dataset::{split_indices, TrajDataset};
pub use distance::{discrete_frechet, dtw};
pub use generate::{GpsTrace, TrajGenConfig};
pub use matching::{MapMatcher, MatchedTrajectory};
