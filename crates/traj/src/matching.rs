//! Map matching: snapping GPS traces onto road segments.
//!
//! A simplified connectivity-aware greedy matcher standing in for the
//! low-sampling-rate HMM matcher the paper cites (Lou et al., 2009): each
//! point selects the candidate segment minimizing point-to-segment distance
//! plus a discontinuity penalty against the previously matched segment.

use sarn_geo::{Grid, LocalProjection, Point};
use sarn_roadnet::RoadNetwork;

/// A map-matched trajectory: the sequence of traversed segment ids, with
/// consecutive duplicates collapsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchedTrajectory {
    /// Traversed segment ids.
    pub segments: Vec<usize>,
}

impl MatchedTrajectory {
    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True for an empty match.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Truncates to at most `max_segments` segments (the paper truncates to
    /// 60 by default and sweeps 60–180 in Table 7).
    pub fn truncated(&self, max_segments: usize) -> MatchedTrajectory {
        MatchedTrajectory {
            segments: self.segments.iter().copied().take(max_segments).collect(),
        }
    }

    /// Midpoint polyline of the matched segments.
    pub fn midpoints(&self, net: &RoadNetwork) -> Vec<Point> {
        self.segments
            .iter()
            .map(|&s| net.segment(s).midpoint())
            .collect()
    }
}

/// Spatially indexed map matcher over a road network.
pub struct MapMatcher<'n> {
    net: &'n RoadNetwork,
    proj: LocalProjection,
    grid: Grid,
    /// Segment ids per grid cell (indexed by midpoint).
    cell_segments: Vec<Vec<usize>>,
    /// Penalty (meters) added when a candidate is not topologically adjacent
    /// to the previous match.
    discontinuity_penalty_m: f64,
    adjacency: Vec<Vec<usize>>,
}

impl<'n> MapMatcher<'n> {
    /// Builds a matcher with a ~250 m candidate grid.
    pub fn new(net: &'n RoadNetwork) -> Self {
        let grid = Grid::new(*net.bbox(), 250.0);
        let mut cell_segments = vec![Vec::new(); grid.num_cells()];
        for (i, seg) in net.segments().iter().enumerate() {
            cell_segments[grid.cell_of(&seg.midpoint())].push(i);
        }
        let mut adjacency = vec![Vec::new(); net.num_segments()];
        for &(a, b, _) in net.topo_edges() {
            adjacency[a].push(b);
        }
        Self {
            net,
            proj: LocalProjection::new(Point::new(net.bbox().min_lat, net.bbox().min_lon)),
            grid,
            cell_segments,
            discontinuity_penalty_m: 60.0,
            adjacency,
        }
    }

    /// Distance from a point to a segment (projected planar geometry).
    fn point_segment_distance(&self, p: &Point, seg_id: usize) -> f64 {
        let seg = self.net.segment(seg_id);
        let (px, py) = self.proj.project(p);
        let (ax, ay) = self.proj.project(&seg.start);
        let (bx, by) = self.proj.project(&seg.end);
        let (dx, dy) = (bx - ax, by - ay);
        let len_sq = dx * dx + dy * dy;
        let t = if len_sq > 0.0 {
            (((px - ax) * dx + (py - ay) * dy) / len_sq).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let (cx, cy) = (ax + t * dx, ay + t * dy);
        ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
    }

    /// Candidate segments near a point (expanding ring search).
    fn candidates(&self, p: &Point) -> Vec<usize> {
        let cell = self.grid.cell_of(p);
        for radius in 1..=3 {
            let cands: Vec<usize> = self
                .grid
                .neighborhood(cell, radius)
                .into_iter()
                .flat_map(|c| self.cell_segments[c].iter().copied())
                .collect();
            if !cands.is_empty() {
                return cands;
            }
        }
        Vec::new()
    }

    /// Matches a single GPS trace to a segment sequence.
    pub fn match_trace(&self, points: &[Point]) -> MatchedTrajectory {
        let mut matched: Vec<usize> = Vec::new();
        for p in points {
            let cands = self.candidates(p);
            if cands.is_empty() {
                continue;
            }
            let prev = matched.last().copied();
            let best = cands
                .into_iter()
                .map(|c| {
                    let mut cost = self.point_segment_distance(p, c);
                    if let Some(pr) = prev {
                        let adjacent = pr == c || self.adjacency[pr].contains(&c);
                        if !adjacent {
                            cost += self.discontinuity_penalty_m;
                        }
                    }
                    (cost, c)
                })
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
                .map(|(_, c)| c);
            if let Some(b) = best {
                if matched.last() != Some(&b) {
                    matched.push(b);
                }
            }
        }
        MatchedTrajectory { segments: matched }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TrajGenConfig;
    use sarn_roadnet::{City, SynthConfig};

    fn net() -> RoadNetwork {
        SynthConfig::city(City::Chengdu).scaled(0.5).generate()
    }

    #[test]
    fn matching_recovers_most_of_the_true_route() {
        let net = net();
        let matcher = MapMatcher::new(&net);
        let cfg = TrajGenConfig {
            count: 10,
            noise_std_m: 8.0,
            sample_every_m: 40.0,
            ..Default::default()
        };
        let mut recalls = Vec::new();
        for trace in cfg.generate(&net) {
            let m = matcher.match_trace(&trace.points);
            assert!(!m.is_empty());
            let hit = trace
                .true_route
                .iter()
                .filter(|s| m.segments.contains(s))
                .count();
            recalls.push(hit as f64 / trace.true_route.len() as f64);
        }
        let mean = recalls.iter().sum::<f64>() / recalls.len() as f64;
        assert!(mean > 0.5, "mean route recall {mean}");
    }

    #[test]
    fn matched_points_are_close_to_inputs() {
        let net = net();
        let matcher = MapMatcher::new(&net);
        let cfg = TrajGenConfig {
            count: 3,
            ..Default::default()
        };
        let proj = LocalProjection::new(Point::new(net.bbox().min_lat, net.bbox().min_lon));
        for trace in cfg.generate(&net) {
            let m = matcher.match_trace(&trace.points);
            for &sid in &m.segments {
                let mid = net.segment(sid).midpoint();
                let d = trace
                    .points
                    .iter()
                    .map(|p| proj.distance_m(p, &mid))
                    .fold(f64::INFINITY, f64::min);
                assert!(d < 300.0, "matched segment {d} m from trace");
            }
        }
    }

    #[test]
    fn truncation_bounds_length() {
        let t = MatchedTrajectory {
            segments: (0..100).collect(),
        };
        assert_eq!(t.truncated(60).len(), 60);
        assert_eq!(t.truncated(200).len(), 100);
    }

    #[test]
    fn consecutive_duplicates_collapse() {
        let net = net();
        let matcher = MapMatcher::new(&net);
        // Repeating the same point many times must not repeat the segment.
        let p = net.segment(0).midpoint();
        let m = matcher.match_trace(&[p, p, p, p]);
        assert_eq!(m.len(), 1);
    }
}
