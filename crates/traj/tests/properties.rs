//! Property-based tests on trajectory distances.

use proptest::prelude::*;
use sarn_geo::{LocalProjection, Point};
use sarn_traj::{discrete_frechet, dtw};

fn proj() -> LocalProjection {
    LocalProjection::new(Point::new(30.0, 104.0))
}

fn polyline() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..2000.0, 0.0f64..2000.0), 1..20).prop_map(|pts| {
        let p = proj();
        pts.into_iter().map(|(x, y)| p.unproject(x, y)).collect()
    })
}

proptest! {
    #[test]
    fn frechet_is_symmetric_and_nonnegative(a in polyline(), b in polyline()) {
        let p = proj();
        let d1 = discrete_frechet(&a, &b, &p);
        let d2 = discrete_frechet(&b, &a, &p);
        prop_assert!((d1 - d2).abs() < 1e-6);
        prop_assert!(d1 >= 0.0);
    }

    #[test]
    fn frechet_identity_of_indiscernibles(a in polyline()) {
        prop_assert!(discrete_frechet(&a, &a, &proj()) < 1e-6);
    }

    #[test]
    fn frechet_at_least_max_endpoint_gap(a in polyline(), b in polyline()) {
        // The coupling must match first-with-first and last-with-last, so
        // the Fréchet distance is bounded below by both endpoint gaps.
        let p = proj();
        let d = discrete_frechet(&a, &b, &p);
        let start_gap = p.distance_m(&a[0], &b[0]);
        let end_gap = p.distance_m(a.last().unwrap(), b.last().unwrap());
        prop_assert!(d + 1e-6 >= start_gap.max(end_gap));
    }

    #[test]
    fn frechet_bounded_by_hausdorff_like_max(a in polyline(), b in polyline()) {
        // Upper bound: the max over all pairwise point distances.
        let p = proj();
        let d = discrete_frechet(&a, &b, &p);
        let max_pair = a
            .iter()
            .flat_map(|x| b.iter().map(move |y| p.distance_m(x, y)))
            .fold(0.0f64, f64::max);
        prop_assert!(d <= max_pair + 1e-6);
    }

    #[test]
    fn dtw_nonnegative_and_zero_on_identical(a in polyline(), b in polyline()) {
        let p = proj();
        prop_assert!(dtw(&a, &b, &p) >= 0.0);
        prop_assert!(dtw(&a, &a, &p) < 1e-6);
    }

    #[test]
    fn dtw_dominates_frechet_scaled(a in polyline(), b in polyline()) {
        // DTW sums per-step costs, Fréchet takes the max of a coupling, so
        // DTW >= Fréchet for any pair.
        let p = proj();
        prop_assert!(dtw(&a, &b, &p) + 1e-6 >= discrete_frechet(&a, &b, &p));
    }
}
