//! A tour of SARN's four technical contributions on a small network:
//! builds each component explicitly and prints what it produces.
//!
//! ```sh
//! cargo run --release -p sarn-examples --example ablation_tour
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sarn_core::{AugmentConfig, Augmenter, CellQueues, SpatialSimilarity, SpatialSimilarityConfig};
use sarn_roadnet::{City, SynthConfig};

fn main() {
    let net = SynthConfig::city(City::Beijing).scaled(0.4).generate();
    let n = net.num_segments();
    println!(
        "Network: {} segments, {} topological edges\n",
        n,
        net.topo_edges().len()
    );

    // Contribution 1: the spatial similarity matrix A^s (Eq. 3-5).
    let sim_cfg = SpatialSimilarityConfig::default();
    let sim = SpatialSimilarity::build(&net, &sim_cfg);
    println!(
        "A^s: {} spatial edges (delta_ds = {} m, delta_as = {:.3} rad)",
        sim.num_edges(),
        sim_cfg.delta_ds_m,
        sim_cfg.delta_as_rad
    );
    let (i, j, w) = sim.edges()[0];
    println!(
        "  e.g. segments {i} and {j}: similarity {w:.3} ({:.0} m apart, headings {:.2} / {:.2} rad)\n",
        sarn_geo::haversine_m(&net.segment(i).midpoint(), &net.segment(j).midpoint()),
        net.segment(i).radian,
        net.segment(j).radian
    );

    // Contribution 2: spatial importance-based augmentation (Eq. 6-7).
    let aug = Augmenter::new(
        n,
        net.topo_edges().to_vec(),
        sim.edges().to_vec(),
        AugmentConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(1);
    let v1 = aug.corrupt(&mut rng);
    let v2 = aug.corrupt(&mut rng);
    println!(
        "Two corrupted views: {} and {} edges retained (of {})",
        v1.num_edges(),
        v2.num_edges(),
        net.topo_edges().len() + sim.num_edges()
    );
    let motorway_kept = v1
        .topo
        .iter()
        .filter(|&&(a, _)| net.segment(a).class == sarn_roadnet::HighwayClass::Motorway)
        .count();
    let motorway_total = net
        .topo_edges()
        .iter()
        .filter(|&&(a, _, _)| net.segment(a).class == sarn_roadnet::HighwayClass::Motorway)
        .count();
    println!(
        "  motorway-origin edges survive preferentially: {}/{} kept\n",
        motorway_kept, motorway_total
    );

    // Contribution 3: grid-partitioned negative-sample queues (Eq. 13-14).
    let mut queues = CellQueues::new(&net, 600.0, 1000, 8);
    println!(
        "Negative-sample grid: {} cells, queue capacity phi = {} per cell",
        queues.num_cells(),
        queues.capacity()
    );
    for s in 0..n.min(200) {
        queues.push(s, &[s as f32 / n as f32; 8]);
    }
    let locals = queues.local_negatives(0).len();
    let globals = queues.global_negatives(0).len();
    println!(
        "  after 200 pushes, segment 0 sees {locals} local negatives and {globals} global readouts\n"
    );

    // Contribution 4 (the two-level loss) is exercised by training — see
    // the quickstart example and `cargo run -p sarn-bench --bin fig5`.
    println!("Run `cargo run --release -p sarn-bench --bin fig5` for the full ablation.");
}
