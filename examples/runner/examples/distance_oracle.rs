//! Shortest-path distance oracle: predict road-network distances from
//! embedding differences instead of running Dijkstra per query.
//!
//! ```sh
//! cargo run --release -p sarn-examples --example distance_oracle
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sarn_core::{train, SarnConfig};
use sarn_graph::dijkstra_path;
use sarn_roadnet::{City, SynthConfig};
use sarn_tasks::{spd, EmbeddingSource, SpdConfig};

fn main() {
    let net = SynthConfig::city(City::Chengdu).scaled(0.5).generate();
    println!("Network: {} segments", net.num_segments());

    let mut cfg = SarnConfig::small();
    cfg.max_epochs = 12;
    println!("Training SARN...");
    let trained = train(&net, &cfg);

    println!("Training the SPD regressor (FFN on embedding differences)...");
    let probe = SpdConfig {
        train_pairs: 3000,
        test_pairs: 300,
        epochs: 25,
        ..Default::default()
    };
    let mut src = EmbeddingSource::frozen(&trained.embeddings);
    let result = spd(&net, &mut src, &probe);
    println!(
        "Held-out accuracy: MAE = {:.0} m, MRE = {:.1}%",
        result.mae_m, result.mre_pct
    );

    // Timing comparison: exact Dijkstra vs the (already trained) oracle's
    // constant-time arithmetic per query.
    let routing = net.routing_digraph();
    let mut rng = StdRng::seed_from_u64(7);
    let pairs: Vec<(usize, usize)> = (0..200)
        .map(|_| {
            (
                rng.gen_range(0..net.num_segments()),
                rng.gen_range(0..net.num_segments()),
            )
        })
        .collect();
    let t0 = Instant::now();
    let mut reachable = 0;
    for &(a, b) in &pairs {
        if dijkstra_path(&routing, a, b).is_some() {
            reachable += 1;
        }
    }
    let dijkstra_time = t0.elapsed();
    let emb = &trained.embeddings;
    let t1 = Instant::now();
    let mut acc = 0.0f32;
    for &(a, b) in &pairs {
        acc += emb
            .row_slice(a)
            .iter()
            .zip(emb.row_slice(b))
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>();
    }
    let oracle_time = t1.elapsed();
    println!(
        "\n200 queries ({reachable} reachable): Dijkstra {:.1} ms vs embedding distance {:.3} ms \
         ({}x speedup; the FFN head adds a constant ~d*20 FLOPs per query)",
        dijkstra_time.as_secs_f64() * 1e3,
        oracle_time.as_secs_f64() * 1e3,
        (dijkstra_time.as_secs_f64() / oracle_time.as_secs_f64().max(1e-9)) as u64,
    );
    let _ = acc;
}
