//! Quickstart: generate a road network, train SARN, and inspect what the
//! embeddings learned.
//!
//! ```sh
//! cargo run --release -p sarn-examples --example quickstart
//! ```

use sarn_core::{train, SarnConfig, SpatialSimilarity, SpatialSimilarityConfig};
use sarn_roadnet::{City, SynthConfig};

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    dot / (na * nb + 1e-9)
}

fn main() {
    // 1. A Chengdu-like road network (synthetic; see DESIGN.md).
    let net = SynthConfig::city(City::Chengdu).scaled(0.5).generate();
    let stats = net.stats();
    println!(
        "Road network: {} segments, {} topological edges, {:.1} m mean length",
        stats.num_segments, stats.num_topo_edges, stats.mean_segment_len_m
    );

    // 2. Train SARN (CPU-friendly configuration).
    let mut cfg = SarnConfig::small();
    cfg.max_epochs = 12;
    println!("Training SARN ({} epochs max)...", cfg.max_epochs);
    let trained = train(&net, &cfg);
    println!(
        "Trained in {:.1} s ({} epochs, final loss {:.4})",
        trained.train_seconds,
        trained.epochs_run,
        trained.loss_history.last().unwrap()
    );

    // 3. The embeddings encode spatial structure: spatially similar
    //    segments (close + same heading) have higher cosine similarity
    //    than random pairs.
    let emb = &trained.embeddings;
    let sim = SpatialSimilarity::build(&net, &SpatialSimilarityConfig::default());
    let spatial_mean: f32 = sim
        .edges()
        .iter()
        .take(500)
        .map(|&(i, j, _)| cosine(emb.row_slice(i), emb.row_slice(j)))
        .sum::<f32>()
        / sim.edges().len().min(500) as f32;
    let n = net.num_segments();
    let random_mean: f32 = (0..500)
        .map(|k| cosine(emb.row_slice(k % n), emb.row_slice((k * 7 + n / 2) % n)))
        .sum::<f32>()
        / 500.0;
    println!("Mean cosine similarity of spatial-edge pairs: {spatial_mean:.3}");
    println!("Mean cosine similarity of random pairs:       {random_mean:.3}");

    // 4. Nearest neighbors of one segment in embedding space.
    let query = n / 2;
    let mut ranked: Vec<(usize, f32)> = (0..n)
        .filter(|&i| i != query)
        .map(|i| (i, cosine(emb.row_slice(query), emb.row_slice(i))))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let qm = net.segment(query).midpoint();
    println!(
        "\nTop-5 embedding neighbors of segment {query} ({:?}, {:.0} m long):",
        net.segment(query).class,
        net.segment(query).length_m
    );
    for &(i, s) in ranked.iter().take(5) {
        let d = sarn_geo::haversine_m(&qm, &net.segment(i).midpoint());
        println!(
            "  segment {i:5}  cos {s:.3}  {:6.0} m away  {:?}",
            d,
            net.segment(i).class
        );
    }
}
