//! Trajectory similarity search — the paper's motivating application
//! (e.g. finding users with similar commutes for carpooling).
//!
//! Generates GPS traces, map-matches them onto the road network, trains
//! SARN embeddings plus a GRU trajectory encoder, and answers a top-k
//! most-similar-trajectory query in linear time, comparing the result
//! against the exact (quadratic-time) Fréchet ranking.
//!
//! ```sh
//! cargo run --release -p sarn-examples --example trajectory_search
//! ```

use sarn_core::{train, SarnConfig};
use sarn_roadnet::{City, SynthConfig};
use sarn_tasks::{traj_sim, EmbeddingSource, TrajSimConfig};
use sarn_traj::{TrajDataset, TrajGenConfig};

fn main() {
    let net = SynthConfig::city(City::SanFrancisco).scaled(0.5).generate();
    println!("Network: {} segments", net.num_segments());

    // Synthetic vehicle traces, map-matched to segment sequences.
    let gen = TrajGenConfig {
        count: 150,
        min_segments: 8,
        max_segments: 30,
        ..Default::default()
    };
    let data = TrajDataset::build(&net, &gen, 30);
    println!("Trajectories after matching: {}", data.len());

    // Self-supervised segment embeddings.
    let mut cfg = SarnConfig::small();
    cfg.max_epochs = 12;
    println!("Training SARN...");
    let trained = train(&net, &cfg);

    // GRU probe on frozen embeddings; retrieval metrics on the test split.
    let probe = TrajSimConfig {
        pairs_per_epoch: 800,
        epochs: 5,
        hidden: 48,
        ..Default::default()
    };
    let mut src = EmbeddingSource::frozen(&trained.embeddings);
    println!("Training the trajectory encoder and evaluating retrieval...");
    let result = traj_sim(&net, &data, &mut src, &probe);
    println!(
        "Top-k retrieval vs exact Fréchet ranking: HR@5 = {:.1}%  HR@20 = {:.1}%  R5@20 = {:.1}%",
        result.hr5_pct, result.hr20_pct, result.r5at20_pct
    );
    println!(
        "\nEach query compares {}-d trajectory vectors with an L1 distance — linear in the\n\
         trajectory count — instead of computing O(len^2) Fréchet couplings per pair.",
        probe.hidden
    );
}
