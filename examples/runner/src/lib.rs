//! Runnable examples for the SARN reproduction. See the `examples/`
//! directory: `quickstart`, `trajectory_search`, `distance_oracle`, and
//! `ablation_tour`.
