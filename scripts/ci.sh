#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and the
# parallel-equivalence suite under varied thread environments.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { echo; echo "=== $* ==="; }

# Every temp dir a step makes is registered here; one EXIT trap sweeps
# them all. (A second `trap ... EXIT` would silently replace the first,
# leaking whichever dir the earlier step registered.)
TMP_DIRS=()
cleanup() { rm -rf "${TMP_DIRS[@]:-}"; }
trap cleanup EXIT
mktemp_tracked() {
  local d
  d="$(mktemp -d)"
  TMP_DIRS+=("$d")
  echo "$d"
}

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The training hot path, tensor backend (including the reduction-order
# kernels), parallel backend, geometry layer, road-network layer (the
# spatial join's data source), serving subsystem, ANN index, and
# telemetry layer must never panic on bad data: unwraps are banned in
# library code there (tests, via --lib's cfg(test) compilation, still
# may). Panics become typed TrainError / IoError / GridError /
# ServeError / AnnError values (telemetry additionally swallows export
# errors entirely — a metrics failure must never kill a training run).
step "cargo clippy -D clippy::unwrap_used (sarn-core, sarn-tensor, sarn-par, sarn-geo, sarn-roadnet, sarn-serve, sarn-ann, sarn-obs, sarn-pipeline lib code)"
cargo clippy -p sarn-core -p sarn-tensor -p sarn-par -p sarn-geo -p sarn-roadnet -p sarn-serve -p sarn-ann -p sarn-obs -p sarn-pipeline --lib -- -D warnings -D clippy::unwrap_used

step "cargo test"
cargo test -q --workspace

# The equivalence tests pin num_threads explicitly except for the
# auto-detection path (num_threads = 0), which resolves through
# RAYON_NUM_THREADS — exercise it at several settings.
for t in 1 2 4; do
  step "parallel equivalence (RAYON_NUM_THREADS=$t)"
  RAYON_NUM_THREADS=$t cargo test -q -p sarn-sys-tests --test parallel_equivalence
done

# Fast <-> Reference kernel equivalence: the property/golden suites and
# the end-to-end reduction-order determinism contract, in both modes
# (the suites flip the knob internally; the env var seeds the default).
for order in reference fast; do
  step "kernel equivalence (SARN_REDUCTION_ORDER=$order)"
  SARN_REDUCTION_ORDER=$order cargo test -q -p sarn-tensor \
    --test kernel_equivalence --test kernel_golden
  SARN_REDUCTION_ORDER=$order cargo test -q -p sarn-sys-tests \
    --test kernel_reduction_order
done

# Spatial-join equivalence: the grid join must reproduce the all-pairs
# oracle bit for bit on adversarial geometry (the suite flips the knob
# explicitly; the env var seeds the default path the rest of the tests
# take), and training must be bitwise join-invariant end to end.
for join in grid reference; do
  step "spatial join equivalence (SARN_SPATIAL_JOIN=$join)"
  SARN_SPATIAL_JOIN=$join cargo test -q -p sarn-core \
    --test spatial_join_equivalence
  SARN_SPATIAL_JOIN=$join cargo test -q -p sarn-sys-tests --test scale_smoke
done

# The scale-2.0 leg (~9k segments, one epoch per join mode, peak-RSS
# budget) is #[ignore]d in the tier-1 suite — debug-mode training at
# that size is minutes — and runs here in release instead.
step "scale smoke at SARN_NET_SCALE=2.0 (release, --ignored)"
cargo test -q --release -p sarn-sys-tests --test scale_smoke -- --ignored

# Kernel benchmark: A^s build time + peak RSS in both join modes, epoch
# time in both reduction modes, and serve-side exact/approx k-NN
# latency, written to the committed BENCH_7.json (SARN_REPORT_JSONL
# appends, so start from a clean file). A second join-only invocation at
# scale 2.0 records the O(n²) → near-linear crossover row.
step "kernel benchmark (BENCH_7.json)"
rm -f BENCH_7.json
SARN_NET_SCALE=0.22 SARN_EPOCHS=3 SARN_REPORT_JSONL=BENCH_7.json \
  cargo run -q --release -p sarn-bench --bin kernel_bench
SARN_NET_SCALE=2.0 SARN_KERNEL_BENCH_LEGS=join SARN_REPORT_JSONL=BENCH_7.json \
  cargo run -q --release -p sarn-bench --bin kernel_bench
test -s BENCH_7.json

# Checkpoint/resume smoke: train half a run with checkpointing on, resume
# it from the directory, and require bitwise equality with a straight run
# (the binary exits non-zero otherwise).
step "checkpoint resume smoke (SARN_RESUME path)"
CKPT_DIR="$(mktemp_tracked)"
SARN_NET_SCALE=0.22 SARN_EPOCHS=6 SARN_CKPT_DIR="$CKPT_DIR" SARN_CKPT_EVERY=1 \
  cargo run -q --release -p sarn-bench --bin resume_smoke
ls "$CKPT_DIR"/ckpt-*.sarnckpt > /dev/null  # retention left artifacts behind

# Watchdog smoke: inject a one-shot NaN into the gradient stream (must
# recover, deterministically) and a sticky one (must surface a typed
# divergence report after max_recoveries, never panic).
step "watchdog fault-injection smoke"
SARN_NET_SCALE=0.22 SARN_EPOCHS=4 SARN_TRAJ_COUNT=30 \
  cargo run -q --release -p sarn-bench --bin watchdog_smoke

# Serving smoke: corrupt artifact swaps and injected I/O faults must fall
# back to the last-known-good generation with typed errors; an overload
# burst must shed and degrade; exits non-zero on any breach or panic.
step "serve fault-injection smoke"
SARN_NET_SCALE=0.22 SARN_EPOCHS=2 \
  cargo run -q --release -p sarn-bench --bin serve_smoke

# Online-pipeline smoke: four edit batches with an injected fault in
# every stage (corrupt record, torn export, reload I/O, diverging
# retrain, mid-repair crash) must all land — generation monotone, serve
# front never torn or stale, incremental A^s bitwise equal to a full
# rebuild; exits non-zero on any breach. The same binary times the
# localized A^s repair against a from-scratch grid join into the
# committed BENCH_8.json (a second repair-only invocation at scale 2.0
# records the row where the two strategies actually separate).
step "online pipeline smoke (BENCH_8.json)"
rm -f BENCH_8.json
SARN_NET_SCALE=0.22 SARN_EPOCHS=2 SARN_REPORT_JSONL=BENCH_8.json \
  cargo run -q --release -p sarn-bench --bin pipeline_smoke
SARN_NET_SCALE=2.0 SARN_PIPELINE_SMOKE_LEGS=repair SARN_REPORT_JSONL=BENCH_8.json \
  cargo run -q --release -p sarn-bench --bin pipeline_smoke
test -s BENCH_8.json

# Online-pipeline system suite in release: the faulted concurrent-reader
# run, the kill/resume bitwise-convergence run, and the staleness-SLO
# probe are minutes in debug mode at their retrain counts.
step "online pipeline system tests (release)"
cargo test -q --release -p sarn-sys-tests --test pipeline_online

# Sharded-router chaos smoke: bitwise identity against the combined
# store at 1 and 4 reader threads, a kill-K-of-N-shards storm under
# per-shard generation churn with a recovery-to-full-coverage assert,
# hedged vs unhedged tail latency against a slow shard, and knn_batch
# equivalence, written to the committed BENCH_9.json (every row carries
# the process peak-RSS high-water mark); exits non-zero on any breach.
step "sharded router chaos smoke (BENCH_9.json)"
rm -f BENCH_9.json
SARN_NET_SCALE=0.22 SARN_REPORT_JSONL=BENCH_9.json \
  cargo run -q --release -p sarn-bench --bin router_chaos_smoke
test -s BENCH_9.json

# Sharded-router system suite in release: the identity runs at 1 and 4
# reader threads plus the chaos kill/recover run race real per-shard
# pointer swaps, so they get optimized atomics rather than debug mode.
# The suite also covers the ANN index: bitwise-deterministic HNSW builds
# under 1 and 4 racing reader threads, and the corrupt-sidecar chaos leg
# (fall back to exact scan, rebuild on the next reload).
step "sharded router system tests (release)"
cargo test -q --release -p sarn-sys-tests --test router_sharded

# ANN load-generator smoke: closed-loop k-NN against the sharded router
# at reduced scale, linear-scan vs HNSW per-shard legs, recall@10 against
# the exact scan, written to the committed BENCH_10.json (SARN_REPORT_JSONL
# appends, so start clean). CI gates are deliberately looser than the
# committed full-scale run (shared runners are noisy): recall >= 0.9 and
# per-shard p99 speedup >= 2x at the largest smoke scale; the binary
# exits non-zero on any breach. The committed BENCH_10.json is produced
# by a full default-scale run (>= 5x p99, recall >= 0.95).
step "ANN load-generator smoke (BENCH_10.json)"
rm -f BENCH_10.json
SARN_REPORT_JSONL=BENCH_10.json \
SARN_LOADGEN_SCALES=2000,12000,48000 SARN_LOADGEN_QUERIES=400 \
SARN_LOADGEN_RECALL_QUERIES=48 SARN_LOADGEN_CONCURRENCY=2 \
SARN_LOADGEN_DURATION_S=2 SARN_LOADGEN_MIN_RECALL=0.9 \
SARN_LOADGEN_MIN_SPEEDUP=2 \
  cargo run -q --release -p sarn-bench --bin load_gen
test -s BENCH_10.json

# Telemetry smoke: train twice (telemetry off/on — must be bitwise
# identical), serve 100 queries per path, then require the exported
# Prometheus/JSON/JSONL artifacts to parse with the key training and
# serving series non-empty; exits non-zero on any breach or panic.
step "telemetry export smoke (obs_smoke)"
OBS_DIR="$(mktemp_tracked)"
SARN_NET_SCALE=0.22 SARN_EPOCHS=2 SARN_TRAJ_COUNT=30 SARN_OBS_DIR="$OBS_DIR" \
  cargo run -q --release -p sarn-bench --bin obs_smoke
ls "$OBS_DIR"/metrics.prom "$OBS_DIR"/metrics.json "$OBS_DIR"/events.jsonl > /dev/null

# Telemetry equivalence: the instrumented run must be bitwise identical
# to the plain run at 1 and 4 worker threads (asserted inside the test).
step "telemetry bitwise equivalence (obs_equivalence)"
cargo test -q -p sarn-sys-tests --test obs_equivalence

echo
echo "ci: all checks passed"
