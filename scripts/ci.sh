#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and the
# parallel-equivalence suite under varied thread environments.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { echo; echo "=== $* ==="; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo test"
cargo test -q --workspace

# The equivalence tests pin num_threads explicitly except for the
# auto-detection path (num_threads = 0), which resolves through
# RAYON_NUM_THREADS — exercise it at several settings.
for t in 1 2 4; do
  step "parallel equivalence (RAYON_NUM_THREADS=$t)"
  RAYON_NUM_THREADS=$t cargo test -q -p sarn-sys-tests --test parallel_equivalence
done

echo
echo "ci: all checks passed"
