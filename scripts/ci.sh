#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and the
# parallel-equivalence suite under varied thread environments.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { echo; echo "=== $* ==="; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The training hot path and tensor backend must never panic on bad data:
# unwraps are banned in library code there (tests, via --lib's cfg(test)
# compilation, still may). Panics become typed TrainError / IoError values.
step "cargo clippy -D clippy::unwrap_used (sarn-core, sarn-tensor lib code)"
cargo clippy -p sarn-core -p sarn-tensor --lib -- -D warnings -D clippy::unwrap_used

step "cargo test"
cargo test -q --workspace

# The equivalence tests pin num_threads explicitly except for the
# auto-detection path (num_threads = 0), which resolves through
# RAYON_NUM_THREADS — exercise it at several settings.
for t in 1 2 4; do
  step "parallel equivalence (RAYON_NUM_THREADS=$t)"
  RAYON_NUM_THREADS=$t cargo test -q -p sarn-sys-tests --test parallel_equivalence
done

# Checkpoint/resume smoke: train half a run with checkpointing on, resume
# it from the directory, and require bitwise equality with a straight run
# (the binary exits non-zero otherwise).
step "checkpoint resume smoke (SARN_RESUME path)"
CKPT_DIR="$(mktemp -d)"
trap 'rm -rf "$CKPT_DIR"' EXIT
SARN_NET_SCALE=0.22 SARN_EPOCHS=6 SARN_CKPT_DIR="$CKPT_DIR" SARN_CKPT_EVERY=1 \
  cargo run -q --release -p sarn-bench --bin resume_smoke
ls "$CKPT_DIR"/ckpt-*.sarnckpt > /dev/null  # retention left artifacts behind

# Watchdog smoke: inject a one-shot NaN into the gradient stream (must
# recover, deterministically) and a sticky one (must surface a typed
# divergence report after max_recoveries, never panic).
step "watchdog fault-injection smoke"
SARN_NET_SCALE=0.22 SARN_EPOCHS=4 SARN_TRAJ_COUNT=30 \
  cargo run -q --release -p sarn-bench --bin watchdog_smoke

echo
echo "ci: all checks passed"
