#!/usr/bin/env python3
"""Splices the latest results/*.txt outputs into EXPERIMENTS.md placeholders."""
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
MD = ROOT / "EXPERIMENTS.md"

SECTIONS = {
    "<!-- TABLE6_RESULTS -->": (
        "table6",
        "**Shape check: PASS** — the GCL-family methods beat node2vec and"
        " SRN2Vec by a wide margin (the paper's starkest split), SARN is the"
        " best self-supervised method on BJ/SF and within noise of GraphCL on"
        " CD, and SARN\\* improves on SARN everywhere. Deviations: our"
        " simplified RNE (no hierarchy) underperforms its paper counterpart,"
        " and HRNR does not dominate SPD as it does in the paper — its"
        " advantage there came from the three-level hierarchy learned with"
        " reconstruction tasks, which the simplified version replaces with"
        " fixed geographic levels.",
    ),
    "<!-- TABLE8_RESULTS -->": (
        "table8",
        "**Shape check: PASS** — GCA and HRNR hit the simulated memory wall"
        " (`OOM`) on SF-L exactly as the paper reports, while SARN/SARN\\*"
        " degrade gracefully and keep their lead as the network doubles"
        " twice. (`SARN_MEMORY_MB` scales the budget to the reduced network"
        " sizes; see `crates/baselines/src/common.rs`.)",
    ),
    "<!-- FIG6_RESULTS -->": (
        "fig6",
        "**Shape check: PARTIAL/PASS** — read against the paper's Fig. 6:"
        " interior optima and plateaus are present but flatter at this scale"
        " and seed count; the λ sweep shows both loss terms contributing"
        " (endpoints weaker than the middle), K shows diminishing returns,"
        " and the (ρ_t, ρ_s) grid degrades toward high corruption rates.",
    ),
    "<!-- DESIGN_ABLATIONS_RESULTS -->": (
        "design_ablations",
        "Design-choice ablations from DESIGN.md §6 (not in the paper):"
        " cosine-normalized InfoNCE vs the literal dot product, mean vs max"
        " queue readout, and momentum sensitivity.",
    ),
}


def main() -> None:
    text = MD.read_text()
    for marker, (name, verdict) in SECTIONS.items():
        if marker not in text:
            continue
        path = ROOT / "results" / f"{name}.txt"
        if not path.exists():
            continue
        block = f"```\n{path.read_text().strip()}\n```\n\n{verdict}"
        text = text.replace(marker, block)
    MD.write_text(text)
    print("filled available sections")


if __name__ == "__main__":
    main()
