#!/usr/bin/env bash
# Regenerates every table and figure of the SARN evaluation and stores the
# output under results/. Scale knobs are tuned for a single-core CPU run of
# roughly an hour; raise SARN_NET_SCALE / SARN_SEEDS / SARN_EPOCHS for
# larger reproductions.
set -u
cd "$(dirname "$0")/.."
mkdir -p results
BIN=target/release

run() {
  local name="$1"; shift
  echo "=== $name ($(date +%H:%M:%S)) ==="
  "$@" > "results/$name.txt" 2> "results/$name.log"
  echo "--- $name finished ($(date +%H:%M:%S))"
}

cargo build --release -p sarn-bench --bins 2>/dev/null

run table3 env SARN_NET_SCALE=0.5 $BIN/table3
run table4 env SARN_NET_SCALE=0.5 SARN_SEEDS=2 SARN_EPOCHS=12 $BIN/table4
run table6 env SARN_NET_SCALE=0.5 SARN_SEEDS=2 SARN_EPOCHS=12 $BIN/table6
run fig5   env SARN_NET_SCALE=0.5 SARN_SEEDS=2 SARN_EPOCHS=12 $BIN/fig5
run table5 env SARN_NET_SCALE=0.5 SARN_SEEDS=1 SARN_EPOCHS=12 $BIN/table5
run fig4   env SARN_NET_SCALE=0.9 SARN_SEEDS=1 SARN_EPOCHS=5 $BIN/fig4
run table7 env SARN_NET_SCALE=0.5 SARN_SEEDS=1 SARN_EPOCHS=12 SARN_MAX_TRAJ_SEGMENTS=30 $BIN/table7
run table8 env SARN_NET_SCALE=0.7 SARN_SEEDS=1 SARN_EPOCHS=10 SARN_MEMORY_MB=48 $BIN/table8
run fig6   env SARN_NET_SCALE=0.4 SARN_SEEDS=1 SARN_EPOCHS=10 $BIN/fig6
echo "ALL EXPERIMENTS DONE ($(date +%H:%M:%S))"
