#!/usr/bin/env bash
# Final experiment pass with the extent-matched sampling grid, label floor,
# and tuned baseline budgets. Overwrites results/ tables it reruns.
set -u
cd "$(dirname "$0")/.."
mkdir -p results
BIN=target/release

run() {
  local name="$1"; shift
  echo "=== $name ($(date +%H:%M:%S)) ==="
  "$@" > "results/$name.txt" 2> "results/$name.log"
  echo "--- $name finished ($(date +%H:%M:%S))"
}

run table4 env SARN_NET_SCALE=0.5 SARN_SEEDS=3 SARN_EPOCHS=30 $BIN/table4
run fig5   env SARN_NET_SCALE=0.5 SARN_SEEDS=2 SARN_EPOCHS=30 $BIN/fig5
run table5 env SARN_NET_SCALE=0.5 SARN_SEEDS=1 SARN_EPOCHS=20 $BIN/table5
run table6 env SARN_NET_SCALE=0.5 SARN_SEEDS=2 SARN_EPOCHS=20 $BIN/table6
run table8 env SARN_NET_SCALE=0.6 SARN_SEEDS=1 SARN_EPOCHS=10 SARN_MEMORY_MB=32 $BIN/table8
run fig6   env SARN_NET_SCALE=0.35 SARN_SEEDS=1 SARN_EPOCHS=10 $BIN/fig6
echo "FINAL PASS DONE ($(date +%H:%M:%S))"
