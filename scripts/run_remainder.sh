#!/usr/bin/env bash
# Compressed remainder of the final pass (time-boxed single-core settings).
set -u
cd "$(dirname "$0")/.."
mkdir -p results
BIN=target/release

run() {
  local name="$1"; shift
  echo "=== $name ($(date +%H:%M:%S)) ==="
  "$@" > "results/$name.txt" 2> "results/$name.log"
  echo "--- $name finished ($(date +%H:%M:%S))"
}

run fig5   env SARN_NET_SCALE=0.5 SARN_SEEDS=1 SARN_EPOCHS=20 $BIN/fig5
run table5 env SARN_NET_SCALE=0.5 SARN_SEEDS=1 SARN_EPOCHS=20 $BIN/table5
run table8 env SARN_NET_SCALE=0.55 SARN_SEEDS=1 SARN_EPOCHS=8 SARN_MEMORY_MB=24 $BIN/table8
run fig6   env SARN_NET_SCALE=0.3 SARN_SEEDS=1 SARN_EPOCHS=8 $BIN/fig6
run design_ablations env SARN_NET_SCALE=0.35 SARN_SEEDS=1 SARN_EPOCHS=10 $BIN/design_ablations
run table6 env SARN_NET_SCALE=0.5 SARN_SEEDS=1 SARN_EPOCHS=20 $BIN/table6
echo "REMAINDER DONE ($(date +%H:%M:%S))"
