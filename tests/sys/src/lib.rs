//! Integration-test crate for the SARN workspace; see `tests/`.
