//! Every baseline produces usable embeddings / predictions on a shared
//! synthetic network.

use sarn_baselines::{
    Gca, GcaConfig, GclBackboneConfig, GraphCl, GraphClConfig, Hrnr, HrnrConfig, MemoryBudget,
    Node2Vec, Node2VecConfig, Rne, RneConfig, Srn2Vec, Srn2VecConfig, TrainError,
};
use sarn_roadnet::{City, RoadNetwork, SynthConfig};
use sarn_tasks::{road_property, EmbeddingSource, RoadPropertyConfig};
use sarn_tensor::Tensor;

fn network() -> RoadNetwork {
    let mut cfg = SynthConfig::city(City::SanFrancisco).scaled(0.28);
    cfg.label_frac = 0.3;
    cfg.generate()
}

fn assert_usable(net: &RoadNetwork, emb: &Tensor, name: &str) {
    assert_eq!(emb.rows(), net.num_segments(), "{name} row count");
    assert!(emb.all_finite(), "{name} non-finite embeddings");
    let mut src = EmbeddingSource::frozen(emb);
    let r = road_property(
        net,
        &mut src,
        &RoadPropertyConfig {
            epochs: 20,
            ..Default::default()
        },
    );
    assert!((0.0..=100.0).contains(&r.f1_pct), "{name} F1 {}", r.f1_pct);
}

#[test]
fn all_frozen_embedding_baselines_run_the_property_task() {
    let net = network();
    let n2v = Node2Vec::train(
        &net,
        &Node2VecConfig {
            d: 16,
            epochs: 1,
            ..Default::default()
        },
    );
    assert_usable(&net, &n2v.embeddings, "node2vec");

    let srn = Srn2Vec::train(
        &net,
        &Srn2VecConfig {
            d: 16,
            pairs_per_epoch: 3000,
            epochs: 2,
            ..Default::default()
        },
    );
    assert_usable(&net, &srn.embeddings, "SRN2Vec");

    let gcl = GraphCl::train(
        &net,
        &GraphClConfig {
            backbone: GclBackboneConfig::tiny(),
            epochs: 2,
            ..Default::default()
        },
    );
    assert_usable(&net, &gcl.embeddings, "GraphCL");

    let gca = Gca::train(
        &net,
        &GcaConfig {
            backbone: GclBackboneConfig::tiny(),
            epochs: 2,
            ..Default::default()
        },
    )
    .expect("GCA fits on this network");
    assert_usable(&net, &gca.embeddings, "GCA");

    let rne = Rne::train(
        &net,
        &RneConfig {
            d: 16,
            sources: 20,
            epochs: 4,
            ..Default::default()
        },
    );
    assert_usable(&net, &rne.embeddings, "RNE");
}

#[test]
fn hrnr_trains_end_to_end_through_the_task_harness() {
    let net = network();
    let hrnr = Hrnr::new(&net, &HrnrConfig::tiny()).unwrap();
    let d = 16;
    let store = hrnr.store.clone();
    let mut src =
        EmbeddingSource::trainable_model(Box::new(move |g, s| hrnr.forward_with(g, s)), store, d);
    let r = road_property(
        &net,
        &mut src,
        &RoadPropertyConfig {
            epochs: 15,
            ..Default::default()
        },
    );
    assert!((0.0..=100.0).contains(&r.f1_pct));
}

#[test]
fn quadratic_memory_methods_oom_like_the_paper() {
    // A budget below the SF requirement: both GCA and HRNR must refuse.
    let net = network();
    let tiny_budget = MemoryBudget { bytes: 4096 };
    let gca = Gca::train(
        &net,
        &GcaConfig {
            backbone: GclBackboneConfig::tiny(),
            memory: tiny_budget,
            ..Default::default()
        },
    );
    assert!(matches!(gca, Err(TrainError::OutOfMemory { .. })));
    let hrnr = Hrnr::new(
        &net,
        &HrnrConfig {
            memory: tiny_budget,
            ..HrnrConfig::tiny()
        },
    );
    assert!(matches!(hrnr, Err(TrainError::OutOfMemory { .. })));
}
