//! Determinism and seed-sensitivity guarantees across the stack.

use sarn_core::{train, SarnConfig};
use sarn_roadnet::{City, SynthConfig};
use sarn_traj::{TrajDataset, TrajGenConfig};

#[test]
fn identical_seeds_reproduce_identical_embeddings() {
    let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
    let mut cfg = SarnConfig::tiny();
    cfg.max_epochs = 3;
    let a = train(&net, &cfg);
    let b = train(&net, &cfg);
    assert_eq!(a.embeddings.shape(), b.embeddings.shape());
    for (x, y) in a.embeddings.data().iter().zip(b.embeddings.data()) {
        assert_eq!(x, y, "embeddings diverge under the same seed");
    }
    assert_eq!(a.loss_history, b.loss_history);
}

#[test]
fn different_seeds_explore_different_optima() {
    let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
    let mut cfg = SarnConfig::tiny();
    cfg.max_epochs = 3;
    let a = train(&net, &cfg);
    let b = train(&net, &cfg.clone().with_seed(99));
    let same = a
        .embeddings
        .data()
        .iter()
        .zip(b.embeddings.data())
        .all(|(x, y)| (x - y).abs() < 1e-9);
    assert!(!same, "different seeds produced identical embeddings");
}

#[test]
fn dataset_generation_is_fully_deterministic() {
    let make = || {
        let net = SynthConfig::city(City::Beijing).scaled(0.3).generate();
        let gen = TrajGenConfig {
            count: 20,
            min_segments: 6,
            max_segments: 12,
            ..Default::default()
        };
        let data = TrajDataset::build(&net, &gen, 12);
        (
            net.stats(),
            data.trajectories
                .iter()
                .map(|t| t.segments.clone())
                .collect::<Vec<_>>(),
        )
    };
    let (s1, t1) = make();
    let (s2, t2) = make();
    assert_eq!(s1, s2);
    assert_eq!(t1, t2);
}
