//! End-to-end pipeline: synthetic city -> SARN training -> all three
//! downstream tasks.

use sarn_core::{train, SarnConfig};
use sarn_roadnet::{City, RoadNetwork, SynthConfig};
use sarn_tasks::{
    road_property, spd, traj_sim, EmbeddingSource, RoadPropertyConfig, SpdConfig, TrajSimConfig,
};
use sarn_traj::{TrajDataset, TrajGenConfig};

fn network() -> RoadNetwork {
    let mut cfg = SynthConfig::city(City::SanFrancisco).scaled(0.3);
    cfg.label_frac = 0.3;
    cfg.generate()
}

fn sarn_cfg() -> SarnConfig {
    let mut cfg = SarnConfig::tiny();
    cfg.max_epochs = 6;
    cfg
}

#[test]
fn sarn_embeddings_drive_all_three_tasks() {
    let net = network();
    let trained = train(&net, &sarn_cfg());
    assert_eq!(trained.embeddings.rows(), net.num_segments());

    // Task 1: road property prediction.
    let mut src = EmbeddingSource::frozen(&trained.embeddings);
    let prop = road_property(
        &net,
        &mut src,
        &RoadPropertyConfig {
            epochs: 40,
            ..Default::default()
        },
    );
    assert!((0.0..=100.0).contains(&prop.f1_pct));
    assert!(
        prop.auc_pct > 40.0,
        "AUC {} is worse than chance",
        prop.auc_pct
    );

    // Task 2: trajectory similarity.
    let gen = TrajGenConfig {
        count: 50,
        min_segments: 6,
        max_segments: 15,
        ..Default::default()
    };
    let data = TrajDataset::build(&net, &gen, 15);
    let mut src = EmbeddingSource::frozen(&trained.embeddings);
    let ts = traj_sim(&net, &data, &mut src, &TrajSimConfig::tiny());
    assert!((0.0..=100.0).contains(&ts.hr5_pct));
    assert!(
        ts.hr20_pct >= ts.hr5_pct * 0.5,
        "HR@20 {} vs HR@5 {}",
        ts.hr20_pct,
        ts.hr5_pct
    );

    // Task 3: shortest-path distance.
    let mut src = EmbeddingSource::frozen(&trained.embeddings);
    let sr = spd(&net, &mut src, &SpdConfig::tiny());
    assert!(sr.mae_m.is_finite() && sr.mae_m > 0.0);
    assert!(sr.mre_pct < 200.0, "MRE {}", sr.mre_pct);
}

#[test]
fn sarn_star_finetuning_runs_and_changes_the_encoder() {
    let net = network();
    let trained = train(&net, &sarn_cfg());
    let before = trained.embeddings.clone();
    let mut src = EmbeddingSource::sarn_finetune(&trained);
    let _ = road_property(
        &net,
        &mut src,
        &RoadPropertyConfig {
            epochs: 15,
            ..Default::default()
        },
    );
    // The fine-tuned store differs from the original on the last GAT layer
    // only.
    let last: std::collections::HashSet<usize> = trained
        .model
        .last_gat_layer_ids()
        .iter()
        .map(|p| p.index())
        .collect();
    let mut changed = 0;
    let mut frozen_changed = 0;
    for id in trained.model.store.ids() {
        let a = trained.model.store.value(id);
        let b = src.store.value(id);
        let diff = a
            .data()
            .iter()
            .zip(b.data())
            .any(|(x, y)| (x - y).abs() > 1e-7);
        if diff {
            if last.contains(&id.index()) {
                changed += 1;
            } else {
                frozen_changed += 1;
            }
        }
    }
    assert!(changed > 0, "fine-tuning did not touch the last GAT layer");
    assert_eq!(frozen_changed, 0, "fine-tuning leaked into frozen layers");
    let _ = before;
}

#[test]
fn sarn_beats_untrained_embeddings_on_trajectory_retrieval() {
    let net = network();
    let trained = train(&net, &sarn_cfg());
    let gen = TrajGenConfig {
        count: 60,
        min_segments: 6,
        max_segments: 15,
        seed: 3,
        ..Default::default()
    };
    let data = TrajDataset::build(&net, &gen, 15);
    let mut probe = TrajSimConfig::tiny();
    probe.epochs = 5;
    probe.pairs_per_epoch = 250;

    let mut src = EmbeddingSource::frozen(&trained.embeddings);
    let good = traj_sim(&net, &data, &mut src, &probe);

    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let random =
        sarn_tensor::init::normal(&mut rng, net.num_segments(), trained.embeddings.cols(), 1.0);
    let mut src = EmbeddingSource::frozen(&random);
    let bad = traj_sim(&net, &data, &mut src, &probe);
    assert!(
        good.hr20_pct >= bad.hr20_pct,
        "SARN {} vs random {}",
        good.hr20_pct,
        bad.hr20_pct
    );
}
