//! Reduction-order determinism contract, end to end.
//!
//! `SarnConfig::reduction_order` selects between the Reference kernels
//! (scalar left-to-right accumulation, bit-identical to the pre-SIMD code)
//! and the Fast kernels (lane accumulators / packed panels that
//! re-associate sums in a fixed order). The contract this suite pins:
//!
//! 1. **Reference is the bitwise anchor.** Training in Reference mode
//!    produces identical bits at 1 and 4 threads — the same guarantee every
//!    other determinism suite (resume, parallel equivalence, telemetry
//!    invisibility) relies on, so those suites keep their fixtures.
//! 2. **Fast is self-deterministic.** Two Fast runs with the same seed and
//!    thread count agree bitwise — re-association is *fixed*, not raced —
//!    and the Fast kernels split rows without reordering accumulation, so
//!    Fast is thread-count invariant too.
//! 3. Cross-mode results are *numerically* close (the modes compute the
//!    same math) but are **not** promised bitwise equal.
//!
//! The reduction-order knob is a process global (set from the config at
//! the top of training), so the tests in this binary serialize on a mutex
//! and restore Reference before releasing it.

use std::sync::Mutex;

use sarn_core::{train, ReductionOrder, SarnConfig, SarnTrained};
use sarn_roadnet::{City, RoadNetwork, SynthConfig};

static KNOB: Mutex<()> = Mutex::new(());

fn small_net() -> RoadNetwork {
    SynthConfig::city(City::Chengdu).scaled(0.22).generate()
}

fn run(net: &RoadNetwork, order: ReductionOrder, threads: usize) -> SarnTrained {
    let mut cfg = SarnConfig::tiny()
        .with_reduction_order(order)
        .with_num_threads(threads);
    cfg.max_epochs = 3;
    train(net, &cfg)
}

/// Restores the process-global default on drop so a failing assertion
/// cannot leak Fast mode into later tests of this binary.
struct ResetOnDrop;
impl Drop for ResetOnDrop {
    fn drop(&mut self) {
        sarn_par::set_reduction_order(ReductionOrder::Reference);
        sarn_par::set_num_threads(1);
    }
}

#[test]
fn reference_mode_is_bitwise_identical_across_thread_counts() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetOnDrop;
    let net = small_net();
    let serial = run(&net, ReductionOrder::Reference, 1);
    let parallel = run(&net, ReductionOrder::Reference, 4);
    assert_eq!(serial.loss_history, parallel.loss_history);
    assert_eq!(serial.embeddings.data(), parallel.embeddings.data());
}

#[test]
fn fast_mode_is_self_deterministic_and_thread_invariant() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetOnDrop;
    let net = small_net();
    let first = run(&net, ReductionOrder::Fast, 2);
    let second = run(&net, ReductionOrder::Fast, 2);
    assert_eq!(
        first.loss_history, second.loss_history,
        "same seed + same thread count must reproduce Fast bits"
    );
    assert_eq!(first.embeddings.data(), second.embeddings.data());

    // The Fast kernels also split work without reordering accumulation, so
    // thread count is invisible in Fast mode too.
    let serial = run(&net, ReductionOrder::Fast, 1);
    assert_eq!(first.loss_history, serial.loss_history);
    assert_eq!(first.embeddings.data(), serial.embeddings.data());
}

#[test]
fn modes_compute_the_same_math_to_float_tolerance() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = ResetOnDrop;
    let net = small_net();
    let reference = run(&net, ReductionOrder::Reference, 1);
    let fast = run(&net, ReductionOrder::Fast, 1);
    assert_eq!(reference.epochs_run, fast.epochs_run);
    // Rounding differences compound across optimizer steps, so only the
    // first epoch — one forward/backward from identical weights — is held
    // to a tight bound.
    let (a, b) = (reference.loss_history[0], fast.loss_history[0]);
    assert!(
        (a - b).abs() <= 1e-2 * (1.0 + a.abs()),
        "first-epoch loss diverged across modes: {a} vs {b}"
    );
}
