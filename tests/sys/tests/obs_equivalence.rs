//! Telemetry must not perturb training.
//!
//! The observability contract (`crates/obs`, DESIGN.md §11) is that
//! recording only ever *reads* training state: counters, gauges, spans
//! and journal events never touch parameters, RNG streams, or the
//! accumulation order. These tests train the same small synthetic city
//! with telemetry off and then on (with per-epoch file exports, the most
//! invasive configuration) and assert the runs are **bitwise identical**
//! — at one worker thread and at four, since span timers wrap the
//! parallel sections too. A third check asserts the exports the
//! instrumented leg wrote actually parse and carry the training series,
//! so the equivalence is not won by telemetry silently recording
//! nothing.

use sarn_core::{train, SarnConfig};
use sarn_obs::ObsConfig;
use sarn_roadnet::{City, SynthConfig};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sarn_obs_equiv_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating scratch dir");
    dir
}

fn assert_bitwise_equal_runs(threads: usize) {
    let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
    let mut cfg = SarnConfig::tiny().with_num_threads(threads);
    cfg.max_epochs = 3;

    // Telemetry-off leg first: the global enable flag is sticky, so the
    // instrumented leg must come second within the process.
    let plain = train(&net, &cfg);

    let dir = scratch_dir(&format!("t{threads}"));
    let instrumented = train(
        &net,
        &cfg.clone().with_obs(ObsConfig {
            export_dir: Some(dir.clone()),
            export_every: 1,
            ..ObsConfig::default()
        }),
    );

    assert_eq!(plain.epochs_run, instrumented.epochs_run);
    assert_eq!(
        plain.loss_history, instrumented.loss_history,
        "telemetry changed the loss history at {threads} thread(s)"
    );
    assert_eq!(
        plain.embeddings.data(),
        instrumented.embeddings.data(),
        "telemetry changed the embeddings at {threads} thread(s)"
    );

    // The instrumented leg must have really recorded: its exports parse
    // and carry the per-epoch training series.
    let prom = std::fs::read_to_string(dir.join(sarn_obs::PROMETHEUS_FILE))
        .expect("instrumented run exported metrics.prom");
    let samples = sarn_obs::parse_prometheus(&prom).expect("exported Prometheus text parses");
    let epochs = samples
        .iter()
        .find(|s| s.name == "sarn_train_epochs_total")
        .expect("sarn_train_epochs_total present")
        .value;
    assert!(
        epochs >= plain.epochs_run as f64,
        "epoch counter {epochs} below {} epochs run",
        plain.epochs_run
    );
    let json = std::fs::read_to_string(dir.join(sarn_obs::JSON_FILE))
        .expect("instrumented run exported metrics.json");
    sarn_obs::validate_json(&json).expect("exported JSON snapshot validates");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_is_bitwise_invisible_to_serial_training() {
    assert_bitwise_equal_runs(1);
}

#[test]
fn telemetry_is_bitwise_invisible_to_parallel_training() {
    assert_bitwise_equal_runs(4);
}
