//! Serial / parallel training equivalence.
//!
//! The parallel compute backend (`sarn-par`) promises that every kernel
//! splits work without reordering accumulation, so a full training run —
//! similarity build, per-epoch two-view augmentation, GAT forward/backward,
//! InfoNCE, queue readouts — must produce the same numbers at any thread
//! count. These tests train the same small synthetic city at
//! `num_threads = 1` and `4` and compare the loss histories and final
//! embeddings. The acceptance tolerance is 1e-5, but the backend's
//! determinism contract is exact, so bitwise equality is asserted too: if
//! the exact check ever starts failing, a kernel has silently changed its
//! accumulation order.

use sarn_core::{train, SarnConfig, SarnVariant};
use sarn_roadnet::{City, SynthConfig};

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

#[test]
fn training_is_equivalent_across_thread_counts() {
    let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
    let mut cfg = SarnConfig::tiny();
    cfg.max_epochs = 3;

    let serial = train(&net, &cfg.clone().with_num_threads(1));
    let parallel = train(&net, &cfg.clone().with_num_threads(4));

    assert_eq!(serial.epochs_run, parallel.epochs_run);
    assert_eq!(serial.loss_history.len(), parallel.loss_history.len());
    for (e, (a, b)) in serial
        .loss_history
        .iter()
        .zip(&parallel.loss_history)
        .enumerate()
    {
        assert!(
            (a - b).abs() <= 1e-5,
            "epoch {e} loss diverged: serial {a} vs parallel {b}"
        );
    }
    let emb_diff = max_abs_diff(serial.embeddings.data(), parallel.embeddings.data());
    assert!(
        emb_diff <= 1e-5,
        "final embeddings diverged: max |diff| = {emb_diff}"
    );

    // Deterministic-accumulation contract: the runs are *identical*.
    assert_eq!(
        serial.loss_history, parallel.loss_history,
        "loss histories differ bitwise"
    );
    assert_eq!(
        serial.embeddings.data(),
        parallel.embeddings.data(),
        "embeddings differ bitwise"
    );
}

#[test]
fn auto_thread_count_matches_serial() {
    // `num_threads = 0` resolves via RAYON_NUM_THREADS / the machine; the
    // result must still be the serial run's.
    let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
    let mut cfg = SarnConfig::tiny().with_variant(SarnVariant::WithoutMNL);
    cfg.max_epochs = 2;

    let serial = train(&net, &cfg.clone().with_num_threads(1));
    let auto = train(&net, &cfg.clone().with_num_threads(0));
    assert_eq!(serial.loss_history, auto.loss_history);
    assert_eq!(serial.embeddings.data(), auto.embeddings.data());
}
