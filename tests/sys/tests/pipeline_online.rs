//! System test of the fault-tolerant online pipeline: the network is
//! mutated mid-run with faults injected into four different stages while
//! a concurrent reader hammers the serve front — queries must never
//! observe a torn generation; the incremental `A^s` repair must stay
//! bitwise identical to a full grid-join rebuild at 1 and 4 threads; and
//! a killed pipeline must resume to the same state a continuous run
//! reaches.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sarn_core::{SarnConfig, SpatialJoin, SpatialSimilarity, SpatialSimilarityConfig};
use sarn_geo::Point;
use sarn_pipeline::{
    EditBatch, NetworkEdit, Pipeline, PipelineConfig, PipelineFault, PipelineFaultKind,
};
use sarn_roadnet::{City, HighwayClass, RoadNetwork, SynthConfig};
use sarn_serve::{ServeConfig, ServeState};

fn net() -> RoadNetwork {
    SynthConfig::city(City::Chengdu).scaled(0.22).generate()
}

fn state_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sarn-sys-pipeline-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("state dir");
    dir
}

fn pipeline_cfg(name: &str, serve: ServeConfig) -> PipelineConfig {
    let dir = state_dir(name);
    let mut train = SarnConfig::tiny();
    train.max_epochs = 2;
    train.checkpoint_every = 1;
    train.checkpoint_dir = Some(dir.join("ckpt"));
    let mut cfg = PipelineConfig::new(train, serve, dir);
    cfg.stage_backoff = Duration::from_millis(1);
    cfg
}

/// Batch `k`: add two segments, remove one, reclass one — keys chosen so
/// consecutive batches never collide.
fn batch_bytes(p: &Pipeline, k: u64) -> Vec<u8> {
    let live = p.live();
    let n = live.network().num_segments();
    let anchor_a = (7 * k as usize + 3) % n;
    let anchor_b = (11 * k as usize + 19) % n;
    let add = |key: u64, anchor: usize, dlat: f64, dlon: f64| {
        let s = live.network().segment(anchor);
        NetworkEdit::SegmentAdd {
            key,
            class: HighwayClass::Tertiary,
            start: s.end,
            end: Point {
                lat: s.end.lat + dlat,
                lon: s.end.lon + dlon,
            },
            in_neighbors: vec![live.key_of(anchor)],
            out_neighbors: vec![],
        }
    };
    EditBatch::new(vec![
        add(10_000 + 2 * k, anchor_a, 4e-4, -2e-4),
        add(10_001 + 2 * k, anchor_b, -3e-4, 3e-4),
        NetworkEdit::SegmentRemove {
            key: live.key_of((5 * k as usize + 31) % n),
        },
        NetworkEdit::ReclassSegment {
            key: live.key_of((3 * k as usize + 17) % n),
            class: HighwayClass::Primary,
        },
    ])
    .encode()
}

/// Asserts the incrementally repaired `A^s` is bitwise identical to full
/// rebuilds: grid join at 1 and 4 threads, plus the all-pairs reference
/// oracle.
fn assert_bitwise_repair(p: &Pipeline) {
    let base = SpatialSimilarityConfig::default();
    for (join, threads) in [
        (SpatialJoin::Grid, 1),
        (SpatialJoin::Grid, 4),
        (SpatialJoin::Reference, 1),
    ] {
        sarn_par::set_num_threads(threads);
        let rebuilt = SpatialSimilarity::build(
            p.live().network(),
            &SpatialSimilarityConfig { join, ..base },
        );
        assert_eq!(
            p.live().spatial_edges(),
            rebuilt.edges(),
            "incremental repair diverged from a {} rebuild at {threads} threads",
            join.label(),
        );
    }
    sarn_par::set_num_threads(1);
}

#[test]
fn faulted_online_run_never_serves_a_torn_generation() {
    // Faults in four distinct stages across the run.
    let serve = ServeConfig {
        max_staleness: Some(Duration::from_secs(120)),
        reload_backoff: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let mut cfg = pipeline_cfg("faulted", serve);
    cfg.faults = vec![
        PipelineFault {
            batch: 1,
            kind: PipelineFaultKind::CorruptEditRecord,
        },
        PipelineFault {
            batch: 1,
            kind: PipelineFaultKind::TornExport,
        },
        PipelineFault {
            batch: 2,
            kind: PipelineFaultKind::ReloadIoFault,
        },
        PipelineFault {
            batch: 3,
            kind: PipelineFaultKind::DivergingRetrain,
        },
    ];
    let mut p = Pipeline::new(cfg, net()).expect("bootstrap");

    // Concurrent reader: every successful answer must be internally
    // consistent — full-width finite rows from a single generation. A
    // torn swap (half old store, half new) would surface as a width
    // mismatch, a non-finite value, or an out-of-range row.
    let front = p.front();
    let stop = Arc::new(AtomicBool::new(false));
    let queries_ok = Arc::new(AtomicU64::new(0));
    let reader = {
        let front = Arc::clone(&front);
        let stop = Arc::clone(&stop);
        let queries_ok = Arc::clone(&queries_ok);
        std::thread::spawn(move || {
            let mut seg = 0usize;
            while !stop.load(Ordering::Acquire) {
                let Some(store) = front.store() else { continue };
                let n = store.num_segments();
                let dim = store.dim();
                seg = (seg + 1) % n;
                // A failure here is a typed ServeError (never a panic or
                // a garbage row); a success must be internally consistent.
                if let Ok(emb) = store.embedding(seg, store.deadline()) {
                    assert_eq!(emb.len(), dim, "torn row width");
                    assert!(emb.iter().all(|v| v.is_finite()), "non-finite value served");
                    queries_ok.fetch_add(1, Ordering::Relaxed);
                }
                // Health must never report a torn or stale generation.
                let health = store.health();
                assert!(
                    !matches!(health.state, ServeState::Stale { .. }),
                    "staleness SLO breached mid-run: {health}"
                );
            }
        })
    };

    let mut fallbacks = 0;
    for k in 1..=3u64 {
        let bytes = batch_bytes(&p, k);
        let report = p.process_batch(&bytes).expect("faulted batch absorbed");
        assert_eq!(report.ordinal, k);
        assert_eq!(report.generation, k + 1);
        if report.used_fallback {
            fallbacks += 1;
        }
    }
    stop.store(true, Ordering::Release);
    reader.join().expect("reader thread");

    assert_eq!(fallbacks, 1, "exactly the diverging batch fell back");
    assert!(
        queries_ok.load(Ordering::Relaxed) > 0,
        "the reader never got a successful query in"
    );
    assert_eq!(p.generation(), 4);
    let health = front.health().expect("serving");
    assert!(
        matches!(health.state, ServeState::Serving { .. }),
        "pipeline ended unhealthy: {health}"
    );
    assert_bitwise_repair(&p);
}

#[test]
fn killed_pipeline_resumes_to_the_same_state_as_a_continuous_run() {
    let serve = ServeConfig::default();
    let continuous_cfg = pipeline_cfg("continuous", serve);
    let resumed_cfg = pipeline_cfg("resumed", serve);
    let continuous_dir = continuous_cfg.state_dir.clone();
    let resumed_dir = resumed_cfg.state_dir.clone();

    // Continuous run: bootstrap + 4 batches.
    let mut continuous = Pipeline::new(continuous_cfg, net()).expect("bootstrap");
    let mut log: Vec<Vec<u8>> = Vec::new();
    for k in 1..=4u64 {
        let bytes = batch_bytes(&continuous, k);
        continuous.process_batch(&bytes).expect("batch");
        log.push(bytes);
    }

    // Killed run: same batches, dropped cold after 2, resumed, finished.
    let mut killed = Pipeline::new(resumed_cfg.clone(), net()).expect("bootstrap");
    killed.process_batch(&log[0]).expect("batch 1");
    killed.process_batch(&log[1]).expect("batch 2");
    drop(killed); // the "kill": all in-memory state is gone
    let mut revived = Pipeline::resume(resumed_cfg, net(), &log).expect("resume");
    assert_eq!(revived.completed(), 2, "two batches were durable");
    for bytes in &log[2..] {
        revived.process_batch(bytes).expect("batch after resume");
    }

    // Both lineages converge: same generation, bitwise-identical A^t,
    // A^s, and final exported artifact.
    assert_eq!(revived.generation(), continuous.generation());
    assert_eq!(
        revived.live().network().topo_edges(),
        continuous.live().network().topo_edges()
    );
    assert_eq!(
        revived.live().spatial_edges(),
        continuous.live().spatial_edges()
    );
    assert_bitwise_repair(&revived);
    let final_gen = continuous.generation();
    let load = |dir: &std::path::Path| {
        sarn_tensor::Tensor::load(dir.join(format!("gen-{final_gen:06}.emb")))
            .expect("final artifact")
    };
    let a = load(&continuous_dir);
    let b = load(&resumed_dir);
    assert_eq!(a.shape(), b.shape());
    assert_eq!(a.data(), b.data(), "resumed lineage diverged bitwise");
}

#[test]
fn staleness_slo_fires_on_a_stalled_pipeline_and_clears_on_the_next_batch() {
    let serve = ServeConfig {
        max_staleness: Some(Duration::from_millis(30)),
        ..ServeConfig::default()
    };
    let mut p = Pipeline::new(pipeline_cfg("stale", serve), net()).expect("bootstrap");
    std::thread::sleep(Duration::from_millis(60));
    let health = p.front().health().expect("serving");
    assert!(
        matches!(health.state, ServeState::Stale { .. }),
        "stalled pipeline should report Stale, got {health}"
    );
    // Processing a batch admits a fresh generation and clears the state.
    let bytes = batch_bytes(&p, 1);
    p.process_batch(&bytes).expect("batch");
    let health = p.front().health().expect("serving");
    assert!(
        matches!(health.state, ServeState::Serving { .. }),
        "fresh admission should clear staleness, got {health}"
    );
}
