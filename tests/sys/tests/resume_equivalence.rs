//! Checkpoint / resume equivalence.
//!
//! The checkpoint subsystem (`sarn_core::checkpoint`) promises that a run
//! interrupted at any epoch and resumed from its checkpoint is
//! *bitwise-identical* to the uninterrupted run: same loss history, same
//! final embeddings, same negative-queue contents, at every thread count.
//! These tests train the same small synthetic city for 8 epochs straight
//! and as 3 epochs + checkpoint + fresh-process resume for 5 more, then
//! compare everything — including the final checkpoints themselves, which
//! capture optimizer moments, RNG state, and the FIFO queues.

use sarn_core::checkpoint::{self, Checkpoint};
use sarn_core::{train, SarnConfig};
use sarn_roadnet::{City, RoadNetwork, SynthConfig};
use std::path::PathBuf;

fn tiny_net() -> RoadNetwork {
    SynthConfig::city(City::Chengdu).scaled(0.22).generate()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sarn_resume_eq_{}_{}", std::process::id(), tag));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the straight-vs-resumed comparison at one thread count.
fn assert_resume_equivalent(threads: usize) {
    let net = tiny_net();
    let mut base = SarnConfig::tiny().with_num_threads(threads);
    base.max_epochs = 8;
    base.patience = 100; // keep early stopping out of this window
    let fp = base.fingerprint();

    // Run A: 8 epochs straight, checkpointing every epoch (keep all so the
    // epoch-8 artifact survives for comparison).
    let dir_a = scratch_dir(&format!("straight_t{threads}"));
    let mut cfg_a = base.clone().with_checkpointing(&dir_a, 1);
    cfg_a.checkpoint_keep = 0;
    let straight = train(&net, &cfg_a);

    // Run B: 3 epochs (the interrupted leg keeps the full 8-epoch
    // annealing horizon, as a killed job would), then a *fresh* training
    // call resumes from the epoch-3 checkpoint and finishes the rest.
    let dir_b = scratch_dir(&format!("resumed_t{threads}"));
    let mut cfg_b1 = base.clone().with_checkpointing(&dir_b, 1);
    cfg_b1.checkpoint_keep = 0;
    cfg_b1.max_epochs = 3;
    cfg_b1.schedule_epochs = base.max_epochs;
    let first_leg = train(&net, &cfg_b1);
    assert_eq!(first_leg.epochs_run, 3);

    let ep3 = dir_b.join(checkpoint::checkpoint_file_name(fp, 3));
    assert!(ep3.is_file(), "missing epoch-3 checkpoint at {ep3:?}");
    let mut cfg_b2 = base.clone().with_checkpointing(&dir_b, 1);
    cfg_b2.checkpoint_keep = 0;
    let resumed = train(&net, &cfg_b2.with_resume_from(&ep3));

    // Same run, epoch for epoch.
    assert_eq!(straight.epochs_run, resumed.epochs_run);
    assert_eq!(
        straight.loss_history, resumed.loss_history,
        "loss histories differ bitwise at {threads} thread(s)"
    );
    assert_eq!(
        straight.embeddings.data(),
        resumed.embeddings.data(),
        "embeddings differ bitwise at {threads} thread(s)"
    );

    // The epoch-8 checkpoints capture the rest of the state — optimizer
    // moments, momentum encoder, RNG, shuffle order, and the negative
    // queues. Everything except wall-clock time must match exactly.
    let a = Checkpoint::load(dir_a.join(checkpoint::checkpoint_file_name(fp, 8))).unwrap();
    let b = Checkpoint::load(dir_b.join(checkpoint::checkpoint_file_name(fp, 8))).unwrap();
    assert_eq!(a.meta.fingerprint, b.meta.fingerprint);
    assert_eq!(a.meta.next_epoch, b.meta.next_epoch);
    assert_eq!(a.meta.rng_state, b.meta.rng_state, "RNG states diverged");
    assert_eq!(a.meta.order, b.meta.order, "shuffle orders diverged");
    assert_eq!(a.meta.loss_history, b.meta.loss_history);
    assert_eq!(a.query, b.query, "query params diverged");
    assert_eq!(a.momentum, b.momentum, "momentum params diverged");
    assert_eq!(a.optim, b.optim, "optimizer state diverged");
    assert_eq!(a.queues, b.queues, "queue contents diverged");

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn resume_is_bitwise_identical_serial() {
    assert_resume_equivalent(1);
}

#[test]
fn resume_is_bitwise_identical_parallel() {
    assert_resume_equivalent(4);
}

#[test]
fn auto_resume_picks_up_the_latest_compatible_checkpoint() {
    let net = tiny_net();
    let dir = scratch_dir("auto");
    let mut base = SarnConfig::tiny().with_num_threads(1);
    base.max_epochs = 6;
    base.patience = 100;

    // Straight reference run, no checkpointing.
    let straight = train(&net, &base);

    // Interrupted run: 2 epochs (same 6-epoch annealing horizon), then
    // auto-resume from the directory.
    let mut leg1 = base.clone().with_checkpointing(&dir, 2);
    leg1.max_epochs = 2;
    leg1.schedule_epochs = base.max_epochs;
    train(&net, &leg1);
    let mut leg2 = base.clone().with_checkpointing(&dir, 2);
    leg2.resume_auto = true;
    let resumed = train(&net, &leg2);

    assert_eq!(straight.loss_history, resumed.loss_history);
    assert_eq!(straight.embeddings.data(), resumed.embeddings.data());

    // Rolling retention: default keep = 3, and only same-run checkpoints
    // count. Epochs 2, 4, 6 were saved; all fit.
    let files = checkpoint::list_checkpoints(&dir, Some(base.fingerprint()));
    assert_eq!(files.len(), 3, "expected 3 retained checkpoints: {files:?}");

    // A config with different trajectory knobs must NOT pick these up.
    let other = base.clone().with_seed(base.seed + 1);
    assert!(checkpoint::latest_checkpoint(&dir, Some(other.fingerprint())).is_none());

    std::fs::remove_dir_all(&dir).ok();
}
