//! The sharded router's two system contracts, under real concurrency:
//!
//! 1. **Bitwise identity** — with every shard healthy, routed exact and
//!    approximate k-NN answers are bit-for-bit those of one combined
//!    [`EmbeddingStore`] over the same rows, at 1 and at 4 reader
//!    threads.
//! 2. **Chaos** — kill K of N shards with sticky injected faults in the
//!    middle of per-shard generation churn (admits that swap exactly one
//!    shard, plus corrupt single-shard reloads). Reader threads must
//!    never observe a panic, a torn row, or an unpublished generation;
//!    failures surface only as typed partial coverage or typed sheds;
//!    and once the faults clear, the breakers' probed half-open path
//!    must recover the router to full coverage.
//!
//! Torn-swap detection uses the sentinel-row scheme of
//! `serve_reload.rs`, per shard: every component of global row `r` holds
//! `gen[shard_of(r)] * (r + 1)`, so a single `f32` read pins which
//! generation a shard served and whether the row was whole.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use sarn_geo::Point;
use sarn_serve::{
    BreakerConfig, BreakerState, Deadline, EmbeddingStore, Router, RouterConfig, ServeConfig,
    ServeError, ShardFault, ShardedStore,
};
use sarn_tensor::Tensor;

const N: usize = 64;
const D: usize = 8;
const SHARDS: usize = 4;
const CHURN_ROUNDS: u64 = 12;

fn midpoints() -> Vec<Point> {
    (0..N)
        .map(|i| {
            Point::new(
                30.64 + (i / 8) as f64 * 0.002,
                104.04 + (i % 8) as f64 * 0.002,
            )
        })
        .collect()
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        reload_retries: 0,
        reload_backoff: Duration::from_millis(1),
        ..ServeConfig::default()
    }
}

fn router_cfg() -> RouterConfig {
    RouterConfig {
        num_shards: SHARDS,
        hedge: false,
        shard_retries: 1,
        shard_backoff: Duration::from_millis(1),
        breaker: BreakerConfig {
            failure_threshold: 2,
            open_cooldown: Duration::from_millis(10),
        },
        ..RouterConfig::default()
    }
}

/// Deterministic, row-distinguishable embeddings for the identity leg.
fn distinguishable() -> Tensor {
    Tensor::from_vec(
        N,
        D,
        (0..N * D)
            .map(|p| ((p / D) as f32 + 1.0) * 0.5 + (p % D) as f32)
            .collect(),
    )
}

fn sharded_store() -> ShardedStore {
    let s = ShardedStore::new(midpoints(), D, serve_cfg(), SHARDS).expect("valid sharded store");
    assert!(s.num_shards() > 1, "test needs a real fan-out");
    s
}

fn identity_under_readers(n_readers: usize) {
    let sharded = sharded_store();
    sharded.admit(&distinguishable()).expect("sharded admit");
    let router = Router::new(sharded, router_cfg());
    let single = EmbeddingStore::new(midpoints(), D, serve_cfg()).expect("valid store");
    single.admit(distinguishable()).expect("single admit");

    std::thread::scope(|s| {
        for t in 0..n_readers {
            let (router, single) = (&router, &single);
            s.spawn(move || {
                for segment in (t..N).step_by(n_readers) {
                    for k in [1usize, 5, 16] {
                        let ours = router
                            .knn(segment, k, Deadline::unbounded())
                            .expect("routed knn");
                        assert!(ours.coverage.complete(), "healthy fan-out lost coverage");
                        let theirs = single.knn(segment, k, Deadline::unbounded()).expect("knn");
                        assert_eq!(ours.neighbors.len(), theirs.neighbors.len());
                        for (a, b) in ours.neighbors.iter().zip(&theirs.neighbors) {
                            assert_eq!(a.0, b.0, "segment {segment} k {k}: id order");
                            assert_eq!(
                                a.1.to_bits(),
                                b.1.to_bits(),
                                "segment {segment} k {k}: score bits"
                            );
                        }
                    }
                    let ours = router
                        .knn_approx(segment, 5, Deadline::unbounded())
                        .expect("routed approx");
                    let theirs = single
                        .knn_approx(segment, 5, Deadline::unbounded())
                        .expect("approx");
                    let pairs_ours: Vec<_> = ours
                        .neighbors
                        .iter()
                        .map(|&(i, s)| (i, s.to_bits()))
                        .collect();
                    let pairs_theirs: Vec<_> = theirs
                        .neighbors
                        .iter()
                        .map(|&(i, s)| (i, s.to_bits()))
                        .collect();
                    assert_eq!(pairs_ours, pairs_theirs, "segment {segment}: approx bits");
                }
            });
        }
    });
}

#[test]
fn routed_knn_is_bitwise_identical_with_one_reader() {
    identity_under_readers(1);
}

#[test]
fn routed_knn_is_bitwise_identical_with_four_readers() {
    identity_under_readers(4);
}

/// Sentinel tensor: every component of global row `r` is
/// `gens[shard_of(r)] * (r + 1)`.
fn sentinel(sharded: &ShardedStore, gens: &[u64]) -> Tensor {
    let data = (0..N * D)
        .map(|p| {
            let r = p / D;
            let (shard, _) = sharded.locate(r).expect("known segment");
            gens[shard] as f32 * (r as f32 + 1.0)
        })
        .collect();
    Tensor::from_vec(N, D, data)
}

/// Decodes the sentinel generation of `row` (global id `segment`),
/// asserting the row is whole.
fn decode_generation(segment: usize, row: &[f32]) -> u64 {
    let first = row[0];
    assert!(
        row.iter().all(|&v| v == first),
        "torn read: segment {segment} row mixes values {row:?}"
    );
    let gen = first / (segment as f32 + 1.0);
    assert!(
        (gen - gen.round()).abs() < 1e-3 && gen >= 1.0,
        "segment {segment} served value {first} from a never-published generation ({gen})"
    );
    gen.round() as u64
}

#[test]
fn chaos_kill_k_of_n_shards_mid_churn_then_recover() {
    let sharded = sharded_store();
    let shards = sharded.num_shards();
    let mut gens = vec![1u64; shards];
    sharded
        .admit(&sentinel(&sharded, &gens))
        .expect("initial sentinel admit");
    let router = Router::new(sharded, router_cfg());
    let sharded = router.sharded();
    let kill: Vec<usize> = (0..(shards / 2).max(1)).collect();

    let dir = std::env::temp_dir().join(format!("sarn_sys_router_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("corrupt.emb");
    std::fs::write(&bad, b"not an artifact").expect("corrupt artifact");

    // Per-shard ceiling readers may observe; bumped *before* each admit.
    let max_published: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(1)).collect();
    let stop = AtomicBool::new(false);
    let incomplete = AtomicU64::new(0);
    let shed = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let (router, max_published, stop) = (&router, &max_published, &stop);
        let (incomplete, shed) = (&incomplete, &shed);
        let mut readers = Vec::new();
        for t in 0..4usize {
            readers.push(scope.spawn(move || {
                let sharded = router.sharded();
                let mut last_shard_gen = vec![0u64; sharded.num_shards()];
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let segment = (reads as usize * 5 + t) % N;
                    match router.knn(segment, 5, Deadline::unbounded()) {
                        Ok(answer) => {
                            for &(id, score) in &answer.neighbors {
                                assert!(
                                    id < N && score.is_finite(),
                                    "torn or out-of-range neighbor ({id}, {score})"
                                );
                            }
                            assert!(answer.coverage.answered <= answer.coverage.total);
                            if !answer.coverage.complete() {
                                incomplete.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(ServeError::PartialCoverage { .. } | ServeError::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("untyped failure under chaos: {e}"),
                    }
                    // Direct sentinel probe of one shard: whole rows from
                    // published generations only, monotone per shard.
                    let s = reads as usize % sharded.num_shards();
                    let shard = sharded.shard(s);
                    let local = reads as usize % shard.store.num_segments();
                    let global = shard.globals[local];
                    let row = shard
                        .store
                        .embedding(local, Deadline::unbounded())
                        .expect("shard read during churn");
                    let gen = decode_generation(global, &row);
                    assert!(
                        gen <= max_published[s].load(Ordering::SeqCst),
                        "shard {s} served unpublished sentinel generation {gen}"
                    );
                    assert!(
                        gen >= last_shard_gen[s],
                        "shard {s} generation went backwards: {} -> {gen}",
                        last_shard_gen[s]
                    );
                    last_shard_gen[s] = gen;
                    reads += 1;
                }
                reads
            }));
        }

        // Writer: per-shard generation churn with mid-churn kills.
        for round in 0..CHURN_ROUNDS {
            if round == 3 {
                for &victim in &kill {
                    router.inject_shard_fault(
                        victim,
                        Some(ShardFault {
                            fail_queries: 1,
                            sticky: true,
                            ..ShardFault::default()
                        }),
                    );
                }
            }
            let v = (round as usize) % shards;
            gens[v] += 1;
            max_published[v].store(gens[v], Ordering::SeqCst);
            let swapped = sharded
                .admit_changed(&sentinel(sharded, &gens))
                .expect("churn admit");
            assert_eq!(
                swapped,
                vec![v],
                "round {round}: a single-shard sentinel bump must swap exactly shard {v}"
            );
            // A corrupt single-shard reload fails typed and must leave
            // every generation (including the victim's own) untouched.
            let w = (v + 1) % shards;
            match sharded.reload_shard(w, &bad) {
                Err(ServeError::Load(_)) => {}
                other => panic!("corrupt shard reload: expected Load error, got {other:?}"),
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            let reads = reader.join().expect("reader thread panicked");
            assert!(reads > 0, "reader made no progress during churn");
        }
    });
    assert!(
        incomplete.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed) > 0,
        "killing {} of {shards} shards never degraded a single answer",
        kill.len()
    );

    // Recovery: clear the faults; the breakers must probe half-open and
    // close, restoring full coverage.
    for &victim in &kill {
        router.inject_shard_fault(victim, None);
    }
    let t0 = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(5));
        let answer = router
            .knn(0, 5, Deadline::unbounded())
            .expect("query during recovery");
        if answer.coverage.complete()
            && (0..shards).all(|i| router.breaker_state(i) == BreakerState::Closed)
        {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "router did not recover to full coverage within 10s of faults clearing"
        );
    }
    // Every shard still serves exactly its latest published sentinel.
    for (s, &gen) in gens.iter().enumerate() {
        let shard = sharded.shard(s);
        let global = shard.globals[0];
        let row = shard
            .store
            .embedding(0, Deadline::unbounded())
            .expect("post-recovery read");
        assert_eq!(
            decode_generation(global, &row),
            gen,
            "shard {s} final generation"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
