//! The sharded router's two system contracts, under real concurrency:
//!
//! 1. **Bitwise identity** — with every shard healthy, routed exact and
//!    approximate k-NN answers are bit-for-bit those of one combined
//!    [`EmbeddingStore`] over the same rows, at 1 and at 4 reader
//!    threads.
//! 2. **Chaos** — kill K of N shards with sticky injected faults in the
//!    middle of per-shard generation churn (admits that swap exactly one
//!    shard, plus corrupt single-shard reloads). Reader threads must
//!    never observe a panic, a torn row, or an unpublished generation;
//!    failures surface only as typed partial coverage or typed sheds;
//!    and once the faults clear, the breakers' probed half-open path
//!    must recover the router to full coverage.
//!
//! Torn-swap detection uses the sentinel-row scheme of
//! `serve_reload.rs`, per shard: every component of global row `r` holds
//! `gen[shard_of(r)] * (r + 1)`, so a single `f32` read pins which
//! generation a shard served and whether the row was whole.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use sarn_geo::Point;
use sarn_serve::{
    BreakerConfig, BreakerState, Deadline, EmbeddingStore, IndexState, Router, RouterConfig,
    ServeConfig, ServeError, ShardFault, ShardedStore,
};
use sarn_tensor::Tensor;

const N: usize = 64;
const D: usize = 8;
const SHARDS: usize = 4;
const CHURN_ROUNDS: u64 = 12;

fn midpoints() -> Vec<Point> {
    (0..N)
        .map(|i| {
            Point::new(
                30.64 + (i / 8) as f64 * 0.002,
                104.04 + (i % 8) as f64 * 0.002,
            )
        })
        .collect()
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        reload_retries: 0,
        reload_backoff: Duration::from_millis(1),
        ..ServeConfig::default()
    }
}

fn router_cfg() -> RouterConfig {
    RouterConfig {
        num_shards: SHARDS,
        hedge: false,
        shard_retries: 1,
        shard_backoff: Duration::from_millis(1),
        breaker: BreakerConfig {
            failure_threshold: 2,
            open_cooldown: Duration::from_millis(10),
        },
        ..RouterConfig::default()
    }
}

/// Deterministic, row-distinguishable embeddings for the identity leg.
fn distinguishable() -> Tensor {
    Tensor::from_vec(
        N,
        D,
        (0..N * D)
            .map(|p| ((p / D) as f32 + 1.0) * 0.5 + (p % D) as f32)
            .collect(),
    )
}

fn sharded_store() -> ShardedStore {
    let s = ShardedStore::new(midpoints(), D, serve_cfg(), SHARDS).expect("valid sharded store");
    assert!(s.num_shards() > 1, "test needs a real fan-out");
    s
}

fn identity_under_readers(n_readers: usize) {
    let sharded = sharded_store();
    sharded.admit(&distinguishable()).expect("sharded admit");
    let router = Router::new(sharded, router_cfg());
    let single = EmbeddingStore::new(midpoints(), D, serve_cfg()).expect("valid store");
    single.admit(distinguishable()).expect("single admit");

    std::thread::scope(|s| {
        for t in 0..n_readers {
            let (router, single) = (&router, &single);
            s.spawn(move || {
                for segment in (t..N).step_by(n_readers) {
                    for k in [1usize, 5, 16] {
                        let ours = router
                            .knn(segment, k, Deadline::unbounded())
                            .expect("routed knn");
                        assert!(ours.coverage.complete(), "healthy fan-out lost coverage");
                        let theirs = single.knn(segment, k, Deadline::unbounded()).expect("knn");
                        assert_eq!(ours.neighbors.len(), theirs.neighbors.len());
                        for (a, b) in ours.neighbors.iter().zip(&theirs.neighbors) {
                            assert_eq!(a.0, b.0, "segment {segment} k {k}: id order");
                            assert_eq!(
                                a.1.to_bits(),
                                b.1.to_bits(),
                                "segment {segment} k {k}: score bits"
                            );
                        }
                    }
                    let ours = router
                        .knn_approx(segment, 5, Deadline::unbounded())
                        .expect("routed approx");
                    let theirs = single
                        .knn_approx(segment, 5, Deadline::unbounded())
                        .expect("approx");
                    let pairs_ours: Vec<_> = ours
                        .neighbors
                        .iter()
                        .map(|&(i, s)| (i, s.to_bits()))
                        .collect();
                    let pairs_theirs: Vec<_> = theirs
                        .neighbors
                        .iter()
                        .map(|&(i, s)| (i, s.to_bits()))
                        .collect();
                    assert_eq!(pairs_ours, pairs_theirs, "segment {segment}: approx bits");
                }
            });
        }
    });
}

#[test]
fn routed_knn_is_bitwise_identical_with_one_reader() {
    identity_under_readers(1);
}

#[test]
fn routed_knn_is_bitwise_identical_with_four_readers() {
    identity_under_readers(4);
}

/// Sentinel tensor: every component of global row `r` is
/// `gens[shard_of(r)] * (r + 1)`.
fn sentinel(sharded: &ShardedStore, gens: &[u64]) -> Tensor {
    let data = (0..N * D)
        .map(|p| {
            let r = p / D;
            let (shard, _) = sharded.locate(r).expect("known segment");
            gens[shard] as f32 * (r as f32 + 1.0)
        })
        .collect();
    Tensor::from_vec(N, D, data)
}

/// Decodes the sentinel generation of `row` (global id `segment`),
/// asserting the row is whole.
fn decode_generation(segment: usize, row: &[f32]) -> u64 {
    let first = row[0];
    assert!(
        row.iter().all(|&v| v == first),
        "torn read: segment {segment} row mixes values {row:?}"
    );
    let gen = first / (segment as f32 + 1.0);
    assert!(
        (gen - gen.round()).abs() < 1e-3 && gen >= 1.0,
        "segment {segment} served value {first} from a never-published generation ({gen})"
    );
    gen.round() as u64
}

#[test]
fn chaos_kill_k_of_n_shards_mid_churn_then_recover() {
    let sharded = sharded_store();
    let shards = sharded.num_shards();
    let mut gens = vec![1u64; shards];
    sharded
        .admit(&sentinel(&sharded, &gens))
        .expect("initial sentinel admit");
    let router = Router::new(sharded, router_cfg());
    let sharded = router.sharded();
    let kill: Vec<usize> = (0..(shards / 2).max(1)).collect();

    let dir = std::env::temp_dir().join(format!("sarn_sys_router_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("corrupt.emb");
    std::fs::write(&bad, b"not an artifact").expect("corrupt artifact");

    // Per-shard ceiling readers may observe; bumped *before* each admit.
    let max_published: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(1)).collect();
    let stop = AtomicBool::new(false);
    let incomplete = AtomicU64::new(0);
    let shed = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let (router, max_published, stop) = (&router, &max_published, &stop);
        let (incomplete, shed) = (&incomplete, &shed);
        let mut readers = Vec::new();
        for t in 0..4usize {
            readers.push(scope.spawn(move || {
                let sharded = router.sharded();
                let mut last_shard_gen = vec![0u64; sharded.num_shards()];
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let segment = (reads as usize * 5 + t) % N;
                    match router.knn(segment, 5, Deadline::unbounded()) {
                        Ok(answer) => {
                            for &(id, score) in &answer.neighbors {
                                assert!(
                                    id < N && score.is_finite(),
                                    "torn or out-of-range neighbor ({id}, {score})"
                                );
                            }
                            assert!(answer.coverage.answered <= answer.coverage.total);
                            if !answer.coverage.complete() {
                                incomplete.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(ServeError::PartialCoverage { .. } | ServeError::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("untyped failure under chaos: {e}"),
                    }
                    // Direct sentinel probe of one shard: whole rows from
                    // published generations only, monotone per shard.
                    let s = reads as usize % sharded.num_shards();
                    let shard = sharded.shard(s);
                    let local = reads as usize % shard.store.num_segments();
                    let global = shard.globals[local];
                    let row = shard
                        .store
                        .embedding(local, Deadline::unbounded())
                        .expect("shard read during churn");
                    let gen = decode_generation(global, &row);
                    assert!(
                        gen <= max_published[s].load(Ordering::SeqCst),
                        "shard {s} served unpublished sentinel generation {gen}"
                    );
                    assert!(
                        gen >= last_shard_gen[s],
                        "shard {s} generation went backwards: {} -> {gen}",
                        last_shard_gen[s]
                    );
                    last_shard_gen[s] = gen;
                    reads += 1;
                }
                reads
            }));
        }

        // Writer: per-shard generation churn with mid-churn kills.
        for round in 0..CHURN_ROUNDS {
            if round == 3 {
                for &victim in &kill {
                    router.inject_shard_fault(
                        victim,
                        Some(ShardFault {
                            fail_queries: 1,
                            sticky: true,
                            ..ShardFault::default()
                        }),
                    );
                }
            }
            let v = (round as usize) % shards;
            gens[v] += 1;
            max_published[v].store(gens[v], Ordering::SeqCst);
            let swapped = sharded
                .admit_changed(&sentinel(sharded, &gens))
                .expect("churn admit");
            assert_eq!(
                swapped,
                vec![v],
                "round {round}: a single-shard sentinel bump must swap exactly shard {v}"
            );
            // A corrupt single-shard reload fails typed and must leave
            // every generation (including the victim's own) untouched.
            let w = (v + 1) % shards;
            match sharded.reload_shard(w, &bad) {
                Err(ServeError::Load(_)) => {}
                other => panic!("corrupt shard reload: expected Load error, got {other:?}"),
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            let reads = reader.join().expect("reader thread panicked");
            assert!(reads > 0, "reader made no progress during churn");
        }
    });
    assert!(
        incomplete.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed) > 0,
        "killing {} of {shards} shards never degraded a single answer",
        kill.len()
    );

    // Recovery: clear the faults; the breakers must probe half-open and
    // close, restoring full coverage.
    for &victim in &kill {
        router.inject_shard_fault(victim, None);
    }
    let t0 = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(5));
        let answer = router
            .knn(0, 5, Deadline::unbounded())
            .expect("query during recovery");
        if answer.coverage.complete()
            && (0..shards).all(|i| router.breaker_state(i) == BreakerState::Closed)
        {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "router did not recover to full coverage within 10s of faults clearing"
        );
    }
    // Every shard still serves exactly its latest published sentinel.
    for (s, &gen) in gens.iter().enumerate() {
        let shard = sharded.shard(s);
        let global = shard.globals[0];
        let row = shard
            .store
            .embedding(0, Deadline::unbounded())
            .expect("post-recovery read");
        assert_eq!(
            decode_generation(global, &row),
            gen,
            "shard {s} final generation"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---- ANN index lifecycle (DESIGN.md §16) --------------------------------

/// Serve config with every generation index-eligible.
fn ann_cfg() -> ServeConfig {
    ServeConfig {
        ann_threshold: 1,
        ..serve_cfg()
    }
}

/// Waits for one shard's index to turn `Ready`, panicking past `limit`.
fn wait_ready(sharded: &ShardedStore, shard: usize, limit: Duration) -> u64 {
    let t0 = Instant::now();
    loop {
        match sharded.shard(shard).store.index_state() {
            IndexState::Ready { build_ms } => return build_ms,
            IndexState::FellBack => panic!("shard {shard} index fell back during a clean build"),
            _ => {}
        }
        assert!(
            t0.elapsed() < limit,
            "shard {shard} index not Ready within {limit:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Same seed + same rows must produce bitwise-identical index files, with
/// the build racing 1 reader and racing 4 readers — the background
/// builder inserts rows in one deterministic order, so concurrent query
/// load must not be able to perturb a single byte of the artifact.
#[test]
fn hnsw_build_is_bitwise_deterministic_at_one_and_four_reader_threads() {
    let dir = std::env::temp_dir().join(format!("sarn_sys_ann_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut per_run: Vec<Vec<Vec<u8>>> = Vec::new();
    for (run, readers) in [1usize, 4].into_iter().enumerate() {
        let sharded = ShardedStore::new(midpoints(), D, ann_cfg(), SHARDS).expect("sharded store");
        sharded.admit(&distinguishable()).expect("admit");
        let stop = AtomicBool::new(false);
        let mut bytes = Vec::new();
        std::thread::scope(|scope| {
            let (sharded, stop) = (&sharded, &stop);
            for t in 0..readers {
                scope.spawn(move || {
                    let mut i = t;
                    while !stop.load(Ordering::Relaxed) {
                        let (s, local) = sharded.locate(i % N).expect("locate");
                        sharded
                            .shard(s)
                            .store
                            .knn(local, 5, Deadline::unbounded())
                            .expect("knn during index build");
                        i += readers;
                    }
                });
            }
            for s in 0..sharded.num_shards() {
                wait_ready(sharded, s, Duration::from_secs(30));
                let path = dir.join(format!("run{run}_shard{s}.hnsw"));
                sharded.save_shard_index(s, &path).expect("save index");
                bytes.push(std::fs::read(&path).expect("read index file"));
            }
            stop.store(true, Ordering::Relaxed);
        });
        per_run.push(bytes);
    }
    assert_eq!(
        per_run[0].len(),
        per_run[1].len(),
        "runs saw different shard counts"
    );
    for (s, (a, b)) in per_run[0].iter().zip(&per_run[1]).enumerate() {
        assert!(
            a == b,
            "shard {s}: index built under 1 reader differs from 4 readers"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupted index sidecar mid-reload must cost only the index: the
/// reload itself succeeds, the shard serves exact-scan answers with
/// `FellBack` health (no panic, no torn generation, readers racing the
/// reload stay correct), and the next successful reload without the
/// corrupt sidecar rebuilds to `Ready`.
#[test]
fn corrupt_index_sidecar_falls_back_to_exact_scan_then_rebuilds() {
    let sharded = ShardedStore::new(midpoints(), D, ann_cfg(), SHARDS).expect("sharded store");
    sharded.admit(&distinguishable()).expect("admit");
    wait_ready(&sharded, 0, Duration::from_secs(30));

    let dir = std::env::temp_dir().join(format!("sarn_sys_ann_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let artifact = dir.join("shard0.emb");
    let sidecar = dir.join("shard0.emb.hnsw");
    let rows = distinguishable().gather_rows(sharded.shard_rows(0));
    rows.save(&artifact).expect("save shard artifact");
    sharded.save_shard_index(0, &sidecar).expect("save sidecar");

    // Exact ground truth: the same rows in a store that never indexes.
    let shard_mids: Vec<Point> = sharded
        .shard_rows(0)
        .iter()
        .map(|&g| midpoints()[g])
        .collect();
    let exact = EmbeddingStore::new(shard_mids, D, serve_cfg()).expect("exact store");
    exact.admit(rows).expect("exact admit");
    let local_n = sharded.shard(0).store.num_segments();
    let assert_exact_serving = || {
        for local in 0..local_n {
            let ours = sharded
                .shard(0)
                .store
                .knn(local, 5, Deadline::unbounded())
                .expect("shard knn");
            let theirs = exact
                .knn(local, 5, Deadline::unbounded())
                .expect("exact knn");
            let a: Vec<_> = ours
                .neighbors
                .iter()
                .map(|&(i, s)| (i, s.to_bits()))
                .collect();
            let b: Vec<_> = theirs
                .neighbors
                .iter()
                .map(|&(i, s)| (i, s.to_bits()))
                .collect();
            assert_eq!(a, b, "local {local}: shard answers diverged from exact");
        }
    };

    // Leg 1: an intact sidecar is adopted on reload — Ready with no build.
    let gen = sharded.reload_shard(0, &artifact).expect("clean reload");
    assert!(gen >= 2, "reload must publish a new generation");
    assert_eq!(
        sharded.shard(0).store.index_state(),
        IndexState::Ready { build_ms: 0 },
        "intact sidecar must be adopted without a rebuild"
    );

    // Leg 2: corrupt the sidecar payload (CRC breaks), reload under
    // concurrent readers. The reload succeeds; only the index falls back.
    let mut bytes = std::fs::read(&sidecar).expect("read sidecar");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&sidecar, &bytes).expect("corrupt sidecar");
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (sharded, stop) = (&sharded, &stop);
        for t in 0..2usize {
            scope.spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let knn = sharded
                        .shard(0)
                        .store
                        .knn(i % local_n, 5, Deadline::unbounded())
                        .expect("knn racing a corrupt-sidecar reload");
                    for &(id, score) in &knn.neighbors {
                        assert!(id < local_n && score.is_finite(), "torn neighbor");
                    }
                    i += 2;
                }
            });
        }
        sharded
            .reload_shard(0, &artifact)
            .expect("reload with a corrupt sidecar must still publish the artifact");
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        sharded.shard(0).store.index_state(),
        IndexState::FellBack,
        "corrupt sidecar must report FellBack, not break the reload"
    );
    assert_eq!(
        sharded.shard(0).store.health().index,
        IndexState::FellBack,
        "shard health must carry the fallback"
    );
    assert_exact_serving();

    // Leg 3: the aggregate router health is pessimistic about shard 0.
    let shards_total = sharded.num_shards();
    let router = Router::new(
        ShardedStore::new(midpoints(), D, ann_cfg(), SHARDS).expect("fresh sharded"),
        router_cfg(),
    );
    router.sharded().admit(&distinguishable()).expect("admit");
    for s in 0..shards_total {
        wait_ready(router.sharded(), s, Duration::from_secs(30));
    }
    assert!(
        matches!(router.health().index, IndexState::Ready { .. }),
        "all shards Ready must aggregate to Ready"
    );

    // Leg 4: with the corrupt sidecar gone, the next reload rebuilds.
    std::fs::remove_file(&sidecar).expect("remove sidecar");
    sharded
        .reload_shard(0, &artifact)
        .expect("reload after sidecar removal");
    let build_ms = wait_ready(&sharded, 0, Duration::from_secs(30));
    let _ = build_ms; // a background rebuild happened; any duration is fine
                      // 16-row shards with ef_search >= n: the ANN answers are exhaustive,
                      // so even the indexed path must match the exact store bitwise.
    assert_exact_serving();
    std::fs::remove_dir_all(&dir).ok();
}
