//! Scale smoke: the spatial-join knob end to end, with a memory ceiling.
//!
//! `SarnConfig::similarity.join` selects how `A^s` is built — the
//! all-pairs `Reference` oracle or the bucketed `Grid` join. The two emit
//! bit-identical edge lists (`spatial_join_equivalence` proves it at the
//! matrix level), so *training* must be bit-identical too: same loss
//! bits, same embedding bits. This suite pins that contract end to end,
//! and at the large scale also bounds peak RSS — the grid join buckets
//! candidates instead of materializing an all-pairs scan, and the
//! augmentation sampler streams instead of sorting a dense key vector,
//! so memory stays linear in segments + edges.
//!
//! The always-run test uses a small lattice. The `scale 2.0` test (~9k
//! segments, one epoch per join mode) is `#[ignore]` — debug-mode
//! training at that size would dominate the default suite — and runs in
//! release from `scripts/ci.sh` via `-- --ignored`.

use sarn_core::{train, SarnConfig, SarnTrained, SpatialJoin};
use sarn_roadnet::{City, RoadNetwork, SynthConfig};

/// Peak-RSS ceiling for the scale-2.0 leg: both one-epoch runs (grid and
/// all-pairs reference) must fit. The measured baseline is ~900 MB —
/// dominated by the autograd tape of the full-graph GAT encoder, linear
/// in segments × d × layers — so the budget's ~40% headroom still
/// catches any accidentally materialized n×n intermediate (~315 MB as
/// f32, ~630 MB as f64 at ~9k segments) without flaking on tape growth.
const SCALE2_PEAK_RSS_BUDGET_BYTES: u64 = 1280 << 20;

fn run(net: &RoadNetwork, join: SpatialJoin, epochs: usize) -> SarnTrained {
    let mut cfg = SarnConfig::small();
    cfg.max_epochs = epochs;
    cfg.similarity.join = join;
    train(net, &cfg)
}

/// Trains once per join mode and requires bitwise-identical trajectories.
fn assert_join_modes_train_identically(net: &RoadNetwork, epochs: usize) {
    let grid = run(net, SpatialJoin::Grid, epochs);
    let reference = run(net, SpatialJoin::Reference, epochs);
    assert_eq!(
        grid.loss_history, reference.loss_history,
        "loss bits diverged between join modes"
    );
    assert_eq!(
        grid.embeddings.data(),
        reference.embeddings.data(),
        "embedding bits diverged between join modes"
    );
    assert_eq!(grid.epochs_run, reference.epochs_run);
}

#[test]
fn join_modes_train_identically_on_a_small_lattice() {
    let net = SynthConfig::city(City::Chengdu).scaled(0.25).generate();
    assert_join_modes_train_identically(&net, 2);
}

/// The headline scale leg: ~9k segments (`SARN_NET_SCALE=2.0`
/// equivalent), one epoch per join mode, identical bits, bounded peak
/// RSS. Ignored by default — debug-mode training at this size is far too
/// slow for the tier-1 suite; `scripts/ci.sh` runs it in release.
#[test]
#[ignore = "scale-2.0 training; run in release via scripts/ci.sh (--ignored)"]
fn scale_two_join_modes_train_identically_within_memory_budget() {
    let net = SynthConfig::city(City::Chengdu).scaled(2.0).generate();
    assert!(
        net.num_segments() > 5_000,
        "scale 2.0 should be city-sized, got {}",
        net.num_segments()
    );
    assert_join_modes_train_identically(&net, 1);
    if let Some(peak) = sarn_obs::peak_rss_bytes() {
        assert!(
            peak < SCALE2_PEAK_RSS_BUDGET_BYTES,
            "peak RSS {peak} bytes exceeds the {SCALE2_PEAK_RSS_BUDGET_BYTES}-byte budget"
        );
    }
}
