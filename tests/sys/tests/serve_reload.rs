//! Serving survives reload churn under concurrent readers.
//!
//! A writer thread alternates corrupt and good artifact swaps while
//! reader threads (1, then 4) hammer lookups and k-NN. The embeddings
//! are constructed so every row of generation `g` holds the single value
//! `g * (segment + 1)` in all components — a torn read (components from
//! two generations mixed in one row) or a read from a never-published
//! generation is therefore detectable from the returned values alone.
//!
//! The contract under test, per reader count:
//! - a corrupt reload (garbage or truncated artifact) fails with a typed
//!   error, flips health to `Degraded`, and never changes served results;
//! - a subsequent good reload atomically advances every reader to the
//!   new generation (readers only ever observe whole, published
//!   generations, monotonically non-decreasing);
//! - an overload burst sheds with `Overloaded` and pressure above the
//!   degrade threshold downgrades exact k-NN to the grid path;
//! - no thread panics.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use sarn_geo::Point;
use sarn_serve::{Deadline, EmbeddingStore, ServeConfig, ServeError, ServeState};
use sarn_tensor::Tensor;

const N: usize = 64;
const D: usize = 8;
const CHURN_ROUNDS: u64 = 12;

fn midpoints() -> Vec<Point> {
    (0..N)
        .map(|i| {
            Point::new(
                30.64 + (i / 8) as f64 * 0.002,
                104.04 + (i % 8) as f64 * 0.002,
            )
        })
        .collect()
}

/// Row `i` is `[gen * (i + 1); D]`: constant within a row so torn reads
/// are visible, distinct across rows and generations.
fn artifact(generation: u64) -> Tensor {
    Tensor::from_vec(
        N,
        D,
        (0..N * D)
            .map(|p| generation as f32 * ((p / D) as f32 + 1.0))
            .collect(),
    )
}

/// Decode which generation a returned embedding came from, asserting the
/// row is untorn and the generation is whole.
fn decode_generation(segment: usize, row: &[f32]) -> u64 {
    let first = row[0];
    assert!(
        row.iter().all(|&v| v == first),
        "torn read: segment {segment} row mixes values {row:?}"
    );
    let gen = first / (segment as f32 + 1.0);
    assert!(
        (gen - gen.round()).abs() < 1e-3 && gen >= 1.0,
        "segment {segment} served value {first} from a never-published generation ({gen})"
    );
    gen.round() as u64
}

fn churn_under_readers(n_readers: usize) {
    let cfg = ServeConfig {
        reload_retries: 1,
        reload_backoff: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let store = EmbeddingStore::new(midpoints(), D, cfg).expect("valid store");
    let dir = std::env::temp_dir().join(format!(
        "sarn_sys_serve_{}r_{}",
        n_readers,
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("embeddings.emb");

    artifact(1).save(&path).expect("saving generation 1");
    // The ceiling readers may observe; advanced by the writer *before*
    // each publish so it is always an upper bound.
    let max_published = AtomicU64::new(1);
    assert_eq!(store.reload(&path).expect("initial reload"), 1);
    let good_bytes = std::fs::read(&path).expect("reading good artifact");

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (store, stop, max_published) = (&store, &stop, &max_published);
        let mut readers = Vec::new();
        for r in 0..n_readers {
            readers.push(scope.spawn(move || {
                let mut last_gen = 0u64;
                let mut reads = 0u64;
                let mut seg = r * 7;
                while !stop.load(Ordering::Relaxed) {
                    seg = (seg + 1) % N;
                    let row = store
                        .embedding(seg, Deadline::unbounded())
                        .expect("lookup during churn");
                    let gen = decode_generation(seg, &row);
                    assert!(
                        gen <= max_published.load(Ordering::SeqCst),
                        "segment {seg} served unpublished generation {gen}"
                    );
                    assert!(
                        gen >= last_gen,
                        "generation went backwards: {last_gen} -> {gen}"
                    );
                    last_gen = gen;
                    if reads.is_multiple_of(16) {
                        let knn = store
                            .knn(seg, 5, Deadline::unbounded())
                            .expect("knn during churn");
                        assert!(knn.generation >= last_gen && !knn.neighbors.is_empty());
                    }
                    reads += 1;
                }
                reads
            }));
        }

        // Writer: alternate corrupt swaps (must fall back) with good
        // swaps (must advance the generation).
        let probe = N / 2;
        for round in 0..CHURN_ROUNDS {
            let current = 1 + round;
            if round % 2 == 0 {
                std::fs::write(&path, b"not an artifact").expect("garbage swap");
            } else {
                let cut = good_bytes.len() / 2 + round as usize;
                std::fs::write(&path, &good_bytes[..cut]).expect("truncated swap");
            }
            match store.reload(&path) {
                Err(ServeError::Load(_)) => {}
                other => panic!("corrupt reload round {round}: expected Load error, got {other:?}"),
            }
            let health = store.health();
            assert!(
                matches!(health.state, ServeState::Degraded { generation, .. } if generation == current),
                "round {round}: expected degraded on generation {current}, got {health}"
            );
            let stale = store
                .embedding(probe, Deadline::unbounded())
                .expect("stale read after corrupt reload");
            assert_eq!(
                decode_generation(probe, &stale),
                current,
                "corrupt reload changed served results"
            );

            let next = current + 1;
            artifact(next).save(&path).expect("good swap");
            max_published.store(next, Ordering::SeqCst);
            assert_eq!(store.reload(&path).expect("good reload"), next);
            assert_eq!(
                store.health().state,
                ServeState::Serving { generation: next }
            );
        }
        stop.store(true, Ordering::Relaxed);

        for reader in readers {
            let reads = reader.join().expect("reader thread panicked");
            assert!(reads > 0, "reader made no progress during churn");
        }
    });

    // Readers observed the final generation after the last flip.
    let final_gen = 1 + CHURN_ROUNDS;
    let row = store
        .embedding(0, Deadline::unbounded())
        .expect("final read");
    assert_eq!(decode_generation(0, &row), final_gen);

    // Overload burst: saturation sheds, partial pressure degrades.
    let tickets: Vec<_> = (0..cfg.max_inflight)
        .map(|_| store.try_ticket().expect("filling admission budget"))
        .collect();
    match store.knn(0, 5, Deadline::unbounded()) {
        Err(ServeError::Overloaded { .. }) => {}
        other => panic!("saturated store: expected Overloaded, got {other:?}"),
    }
    assert!(matches!(store.health().state, ServeState::Shedding { .. }));
    drop(tickets);
    let pressure: Vec<_> = (0..cfg.degrade_inflight)
        .map(|_| store.try_ticket().expect("partial pressure"))
        .collect();
    let knn = store
        .knn(0, 5, Deadline::unbounded())
        .expect("knn under pressure");
    assert!(knn.degraded, "pressure above threshold must degrade k-NN");
    drop(pressure);
    let knn = store.knn(0, 5, Deadline::unbounded()).expect("knn at rest");
    assert!(!knn.degraded);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reload_churn_with_one_reader() {
    churn_under_readers(1);
}

#[test]
fn reload_churn_with_four_readers() {
    churn_under_readers(4);
}
