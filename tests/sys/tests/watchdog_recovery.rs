//! Watchdog detection, rollback recovery, and determinism.
//!
//! The training watchdog (`sarn_core::watchdog`) promises that a numerical
//! fault in the hot loop is detected within the batch that produced it,
//! rolled back to the last healthy epoch snapshot, and retried with a
//! backed-off learning rate and a re-derived RNG stream — all
//! *deterministically*: the same faulted configuration produces the same
//! recovery trajectory, loss history, and final embeddings on every rerun
//! and at every thread count. When the fault persists past
//! `max_recoveries`, the run must surface a typed divergence report, never
//! a panic. These tests inject faults into a small synthetic city run and
//! check every clause of that contract.

use sarn_core::{try_train, FaultKind, FaultSpec, SarnConfig, TrainError, WatchdogConfig};
use sarn_roadnet::{City, RoadNetwork, SynthConfig};

fn tiny_net() -> RoadNetwork {
    SynthConfig::city(City::Chengdu).scaled(0.22).generate()
}

fn watched(threads: usize) -> SarnConfig {
    let mut cfg = SarnConfig::tiny().with_num_threads(threads);
    cfg.max_epochs = 6;
    cfg.patience = 100; // keep early stopping out of this window
    cfg.with_watchdog(WatchdogConfig::default())
}

fn nan_grad_at(epoch: usize, sticky: bool) -> FaultSpec {
    FaultSpec {
        epoch,
        batch: 0,
        kind: FaultKind::NanGrad,
        sticky,
    }
}

/// A one-shot NaN in the gradient stream is caught in its own batch,
/// rolled back, and the run still finishes with an all-finite loss
/// history — bitwise-identically across reruns.
fn assert_recovers_deterministically(threads: usize) -> sarn_core::SarnTrained {
    let net = tiny_net();
    let mut cfg = watched(threads);
    cfg.fault = Some(nan_grad_at(3, false));

    let run = try_train(&net, &cfg).expect("one-shot fault must recover");
    assert_eq!(run.recoveries.len(), 1, "expected exactly one recovery");
    let ev = &run.recoveries[0];
    // Detection within one batch: the violation names the injection site.
    assert_eq!(ev.violation.epoch(), 3);
    assert_eq!(ev.violation.batch(), Some(0));
    // Rollback lands on the last healthy epoch boundary.
    assert_eq!(ev.rolled_back_to_epoch, 3);
    assert_eq!(ev.lr_scale, 0.5);
    assert_eq!(run.epochs_run, cfg.max_epochs);
    assert!(
        run.loss_history.iter().all(|l| l.is_finite()),
        "loss history must be all-finite after recovery: {:?}",
        run.loss_history
    );

    let rerun = try_train(&net, &cfg).expect("rerun of the same faulted configuration");
    assert_eq!(
        run.loss_history, rerun.loss_history,
        "recovery trajectory is not deterministic at {threads} thread(s)"
    );
    assert_eq!(
        run.embeddings.data(),
        rerun.embeddings.data(),
        "recovered embeddings differ between reruns at {threads} thread(s)"
    );
    run
}

#[test]
fn recovery_is_deterministic_at_one_thread() {
    assert_recovers_deterministically(1);
}

#[test]
fn recovery_is_deterministic_at_four_threads() {
    assert_recovers_deterministically(4);
}

/// A sticky fault that re-fires on every retry exhausts the recovery
/// budget and returns a typed report naming the violation site — it must
/// not panic and must not loop forever.
#[test]
fn sticky_fault_exhausts_retries_into_a_typed_report() {
    let net = tiny_net();
    let mut cfg = watched(1);
    cfg.watchdog.max_recoveries = 2;
    cfg.fault = Some(nan_grad_at(2, true));

    match try_train(&net, &cfg) {
        Ok(_) => panic!("sticky fault must not converge"),
        Err(TrainError::Diverged(report)) => {
            assert_eq!(report.recoveries.len(), 2);
            assert_eq!(report.max_recoveries, 2);
            assert_eq!(report.violation.epoch(), 2);
            assert_eq!(report.violation.batch(), Some(0));
            assert!(report.loss_history.iter().all(|l| l.is_finite()));
            // Each retry compounds the backoff.
            assert_eq!(report.recoveries[0].lr_scale, 0.5);
            assert_eq!(report.recoveries[1].lr_scale, 0.25);
            let msg = report.to_string();
            assert!(msg.contains("epoch 2"), "report must name the epoch: {msg}");
            assert!(msg.contains("batch 0"), "report must name the batch: {msg}");
        }
        Err(e) => panic!("expected a divergence report, got: {e}"),
    }
}

/// A NaN loss (finite gradients) takes the same recovery path as a
/// gradient fault.
#[test]
fn nan_loss_recovers_too() {
    let net = tiny_net();
    let mut cfg = watched(1);
    cfg.fault = Some(FaultSpec {
        epoch: 2,
        batch: 0,
        kind: FaultKind::NanLoss,
        sticky: false,
    });
    let run = try_train(&net, &cfg).expect("one-shot NaN loss must recover");
    assert_eq!(run.recoveries.len(), 1);
    assert!(run.loss_history.iter().all(|l| l.is_finite()));
}

/// With the watchdog on but no fault injected, the run is bitwise-
/// identical to a plain run: the probes only read, so enabling monitoring
/// cannot change a healthy trajectory.
#[test]
fn clean_run_is_unchanged_by_the_watchdog() {
    let net = tiny_net();
    let watched_cfg = watched(1);
    let mut plain = watched_cfg.clone();
    plain.watchdog = WatchdogConfig::default();
    assert!(!plain.watchdog.enabled);

    let a = try_train(&net, &watched_cfg).expect("watched run");
    let b = try_train(&net, &plain).expect("plain run");
    assert!(a.recoveries.is_empty());
    assert_eq!(a.loss_history, b.loss_history);
    assert_eq!(a.embeddings.data(), b.embeddings.data());
}

/// Recovery works at any thread count with the *same* trajectory: the
/// recovered run at 4 threads matches the recovered run at 1 thread.
#[test]
fn recovery_is_thread_count_invariant() {
    let net = tiny_net();
    let mut cfg1 = watched(1);
    cfg1.fault = Some(nan_grad_at(3, false));
    let mut cfg4 = watched(4);
    cfg4.fault = Some(nan_grad_at(3, false));

    let one = try_train(&net, &cfg1).expect("1-thread recovery");
    let four = try_train(&net, &cfg4).expect("4-thread recovery");
    assert_eq!(one.loss_history, four.loss_history);
    assert_eq!(one.embeddings.data(), four.embeddings.data());
}
