//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the API subset the SARN bench harness uses: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`criterion_group!`] (both
//! the plain and the `name = ...; config = ...; targets = ...` form), and
//! [`criterion_main!`].
//!
//! Instead of criterion's full statistical machinery it times `sample_size`
//! runs with `Instant` and reports min / mean / max per benchmark on stdout.
//! That is enough to compare serial and parallel execution paths.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value pass-through.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How [`Bencher::iter_batched`] groups setup outputs per timing run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Times a routine; handed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed runs each benchmark performs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `f` under the name `id` and prints min / mean / max.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return self;
        }
        let min = b.samples.iter().min().unwrap();
        let max = b.samples.iter().max().unwrap();
        let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
        println!(
            "{id:<48} min {:>12} mean {:>12} max {:>12} ({} samples)",
            fmt(*min),
            fmt(mean),
            fmt(*max),
            b.samples.len()
        );
        self
    }

    /// Terminal no-op kept for API compatibility.
    pub fn final_summary(&mut self) {}
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group: either `criterion_group!(benches, a, b)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
