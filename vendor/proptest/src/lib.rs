//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of the proptest API the SARN workspace uses: the [`proptest!`]
//! macro, range / tuple / [`collection::vec`] strategies, `prop_map` /
//! `prop_flat_map`, and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its seed and case index so it
//!   can be replayed, but is not minimized.
//! - **Deterministic runs.** Case `k` of every test samples from
//!   `StdRng::seed_from_u64(BASE ^ k)`, so failures reproduce without a
//!   persistence file. Set `PROPTEST_CASES` to change the case count.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// Base seed mixed with the case index for per-case generators.
pub const BASE_SEED: u64 = 0x5EED_CA5E_u64;

/// Run-time configuration of a property test block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Cases to run, honoring the `PROPTEST_CASES` environment variable.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

/// Collection strategies.
pub mod collection {
    use super::{Range, RangeInclusive, Rng, StdRng, Strategy};

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing a `Vec` of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Alias matching the real crate's `prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test, failing the current case
/// (with its replay seed) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Declares deterministic property tests.
///
/// Supports the real crate's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///
///     #[test]
///     fn my_property(x in 0.0f64..1.0, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_internal! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_internal! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Re-exports used by macro expansions; callers need not depend on `rand`.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_internal {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.resolved_cases() as u64 {
                let seed = $crate::BASE_SEED ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut __rng =
                    <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(seed);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property '{}' failed at case {case} (replay seed {seed:#x}): {msg}",
                        stringify!($name)
                    );
                }
            }
        }
        $crate::__proptest_internal! { @cfg($cfg) $($rest)* }
    };
}
