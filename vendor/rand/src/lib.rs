//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the small API subset the SARN workspace actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — not the upstream ChaCha12, so *values* differ from
//! the real `rand`, but every stream is fully deterministic in its seed,
//! which is the property the workspace relies on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random bits.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// (the same convention as the upstream crate).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that [`Rng::gen_range`] can sample from a range.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

/// Unit-interval `f64` from the top 53 bits.
fn unit_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    };
}

float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($t:ty, $wide:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide + (rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide + (rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    };
}

int_range!(u8, u64);
int_range!(u16, u64);
int_range!(u32, u64);
int_range!(u64, u64);
int_range!(usize, u64);
int_range!(i8, i64);
int_range!(i16, i64);
int_range!(i32, i64);
int_range!(i64, i64);
int_range!(isize, i64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Statistically strong, tiny, and — unlike the upstream ChaCha-based
    /// `StdRng` — implementable without external dependencies. Streams are
    /// deterministic functions of the seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Raw generator state, for persistence. Restoring it with
        /// [`StdRng::from_state`] continues the stream exactly where this
        /// generator left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        /// An all-zero state (a xoshiro fixed point, never produced by a
        /// live generator) is nudged the same way as in `from_seed`.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return Self {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::Rng;

    /// Shuffling and sampling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic in the generator state.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5usize..9);
            assert!((5..9).contains(&i));
            let k = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&k));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits} hits");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let snapshot = a.state();
        let mut b = StdRng::from_state(snapshot);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The zero state is nudged, not honored verbatim.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
